module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Iommu = Lastcpu_iommu.Iommu
module Dma = Lastcpu_virtio.Dma
module Sysbus = Lastcpu_bus.Sysbus
module Engine = Lastcpu_sim.Engine
module Station = Lastcpu_sim.Station
module Costs = Lastcpu_sim.Costs
module Metrics = Lastcpu_sim.Metrics
module Faults = Lastcpu_sim.Faults
module Detmap = Lastcpu_sim.Detmap

type open_accept = { connection : int; shm_bytes : int64 }

type service_impl = {
  desc : Message.service_desc;
  can_serve : query:string -> bool;
  on_open :
    client:Types.device_id ->
    pasid:int ->
    auth:Token.t option ->
    params:(string * string) list ->
    (open_accept, Types.error_code) result;
  on_close : connection:int -> unit;
}

type connection_info = {
  conn_id : int;
  service : string;
  client : Types.device_id;
  conn_pasid : int;
}

(* Per-peer circuit breaker (disabled unless [enable_circuit_breaker]).
   Closed counts consecutive busy/timeout failures; Open fast-fails new
   requests until its deadline; the first request after the deadline is the
   half-open probe — its failure reopens immediately, its success closes. *)
type breaker_state = Closed | Open of int64 (* fast-fail until *) | Half_open
type breaker = { mutable state : breaker_state; mutable failures : int }
type breaker_cfg = { threshold : int; cooldown_ns : int64 }

type t = {
  mutable dev_id : Types.device_id;
  dev_name : string;
  sysbus : Sysbus.t;
  engine : Engine.t;
  mem : Lastcpu_mem.Physmem.t;
  iommu : Iommu.t;
  station : Station.t;
  mutable services : service_impl list;
  mutable app_handler : (Message.t -> unit) option;
  mutable fault_handler : (Iommu.fault -> unit) option;
  mutable is_started : bool;
  mutable via_bus_doorbells : bool;
  pending : (int, Message.payload -> unit) Hashtbl.t;
  doorbells : (int, unit -> unit) Hashtbl.t;
  dmas : (int, Dma.t) Hashtbl.t;
  conns : (int, connection_info) Hashtbl.t;
  mutable next_corr : int;
  mutable next_conn : int;
  mutable next_queue : int;
  (* Ring of recently completed correlation ids: a response that arrives
     after its request timed out (or after a duplicate already completed
     it) is swallowed and counted instead of leaking to the app handler. *)
  recent : int array;
  mutable recent_idx : int;
  mutable failed_watchers : (device:Types.device_id -> unit) list;
  actor : string;
  m_handled : Metrics.counter;
  m_sent : Metrics.counter;
  m_faults : Metrics.counter;
  m_discover_late : Metrics.counter;
  m_request_late : Metrics.counter;
  m_retries : Metrics.counter;
  m_gave_up : Metrics.counter;
  breakers : (int, breaker) Hashtbl.t;
  mutable breaker_cfg : breaker_cfg option;
  (* Overload instruments are registered lazily / at enable time so a run
     with no overload knobs keeps its telemetry snapshot unchanged. *)
  mutable m_breaker_opened : Metrics.counter option;
  mutable m_breaker_fast_fails : Metrics.counter option;
  mutable m_expired : Metrics.counter option;
  (* Lazy for the same reason: only a run facing a rogue peer ever sees a
     forged failure notification. *)
  mutable m_forged_failures : Metrics.counter option;
}

let recent_size = 64

let bump_forged_failures t =
  let c =
    match t.m_forged_failures with
    | Some c -> c
    | None ->
      let c =
        Metrics.counter (Engine.metrics t.engine) ~actor:t.actor
          ~name:"forged_failures"
      in
      t.m_forged_failures <- Some c;
      c
  in
  Metrics.incr c

let remember_corr t corr =
  t.recent.(t.recent_idx) <- corr;
  t.recent_idx <- (t.recent_idx + 1) mod recent_size

let recently_completed t corr = Array.exists (fun c -> c = corr) t.recent

let reannounce t =
  Metrics.incr t.m_sent;
  Sysbus.send t.sysbus
    (Message.make ~src:t.dev_id ~dst:Types.Bus ~corr:0
       (Message.Device_alive { services = List.map (fun s -> s.desc) t.services }))

(* Under an active fault plan the announcement itself can be lost on the
   bus; a real device retries until the bus registers it. Bounded, so a
   device that can never rejoin does not keep the event queue alive. *)
let announce_retry_ns = 200_000L

let announce_until_live t attempts =
  let rec check attempts =
    Engine.schedule t.engine ~delay:announce_retry_ns (fun () ->
        if attempts > 0 && not (Sysbus.is_live t.sysbus t.dev_id) then begin
          reannounce t;
          check (attempts - 1)
        end)
  in
  check attempts

let response_like (p : Message.payload) =
  match p with
  | Message.Discover_response _ | Message.Open_response _
  | Message.Alloc_response _ | Message.Map_complete _ | Message.Auth_response _
  | Message.Error_msg _ | Message.App_message _ ->
    true
  | _ -> false

let dispatch t (msg : Message.t) =
  Metrics.incr t.m_handled;
  let to_app () = match t.app_handler with Some f -> f msg | None -> () in
  (* 1. Correlated response? *)
  let as_response =
    if response_like msg.payload then
      match Hashtbl.find_opt t.pending msg.corr with
      | Some k ->
        Hashtbl.remove t.pending msg.corr;
        Some k
      | None -> None
    else None
  in
  match as_response with
  | Some k -> k msg.payload
  | None when response_like msg.payload && recently_completed t msg.corr ->
    (* Late or duplicate answer to a request that already completed
       (timed out, or a fault-injected duplicate): swallow and count. *)
    Metrics.incr t.m_request_late
  | None -> (
    (* 2. Service plane. *)
    match msg.payload with
    | Message.Reset_device ->
      (* Out-of-band reset line (bus revive): rejoin the live set. *)
      reannounce t;
      if Faults.active (Engine.faults t.engine) then announce_until_live t 8
    | Message.Device_failed { device } ->
      (* Failure notifications are management traffic: only the bus itself
         (src < 0) originates them. A peer-sourced one is a forgery — a
         rogue device trying to talk the fleet into failing over away from
         a healthy provider — so it is counted and ignored, never acted on. *)
      if msg.src < 0 then begin
        List.iter (fun f -> f ~device) t.failed_watchers;
        match t.app_handler with Some f -> f msg | None -> ()
      end
      else begin
        bump_forged_failures t;
        Engine.trace_event t.engine ~actor:t.dev_name ~kind:"device.forged-failure"
          (Printf.sprintf "Device_failed{dev%d} claimed by dev%d, ignored"
             device msg.src)
      end
    | Message.Discover_request { kind; query } ->
      List.iter
        (fun s ->
          if s.desc.Message.kind = kind && s.can_serve ~query then begin
            Metrics.incr t.m_sent;
            Sysbus.send t.sysbus
              (Message.make ~src:t.dev_id ~dst:(Types.Device msg.src)
                 ~corr:msg.corr
                 (Message.Discover_response
                    { provider = t.dev_id; service = s.desc; query }))
          end)
        t.services
    | Message.Open_service { service; pasid; auth; params } -> (
      let impl =
        List.find_opt
          (fun s -> String.equal s.desc.Message.name service.Message.name)
          t.services
      in
      let respond payload =
        Metrics.incr t.m_sent;
        Sysbus.send t.sysbus
          (Message.make ~src:t.dev_id ~dst:(Types.Device msg.src) ~corr:msg.corr
             payload)
      in
      match impl with
      | None ->
        respond
          (Message.Open_response
             {
               accepted = false;
               connection = 0;
               shm_bytes = 0L;
               error = Some Types.E_no_such_service;
             })
      | Some s -> (
        match s.on_open ~client:msg.src ~pasid ~auth ~params with
        | Error code ->
          respond
            (Message.Open_response
               { accepted = false; connection = 0; shm_bytes = 0L; error = Some code })
        | Ok { connection; shm_bytes } ->
          Hashtbl.replace t.conns connection
            {
              conn_id = connection;
              service = s.desc.Message.name;
              client = msg.src;
              conn_pasid = pasid;
            };
          respond
            (Message.Open_response
               { accepted = true; connection; shm_bytes; error = None })))
    | Message.Doorbell { queue } -> (
      match Hashtbl.find_opt t.doorbells queue with
      | Some f -> f ()
      | None -> to_app ())
    | Message.Close_service { connection } ->
      (match Hashtbl.find_opt t.conns connection with
      | None -> ()
      | Some info ->
        Hashtbl.remove t.conns connection;
        List.iter
          (fun s ->
            if String.equal s.desc.Message.name info.service then
              s.on_close ~connection)
          t.services)
    | _ -> to_app ())

let bump_expired t =
  let c =
    match t.m_expired with
    | Some c -> c
    | None ->
      let c =
        Metrics.counter (Engine.metrics t.engine) ~actor:t.actor
          ~name:"expired_dropped"
      in
      t.m_expired <- Some c;
      c
  in
  Metrics.incr c

let handle t msg =
  (* Per-device monitor: messages are processed serially with a fixed
     per-message cost — the "modest hardware" of §2.2. *)
  let costs = Engine.costs t.engine in
  let now = Engine.now t.engine in
  if Message.expired msg ~now then begin
    bump_expired t;
    Engine.trace_event t.engine ~actor:t.dev_name ~kind:"device.expired"
      (Printf.sprintf "%s past deadline, shed" (Message.payload_tag msg.payload))
  end
  else
    match
      Station.try_submit t.station ~service:costs.Costs.device_process_ns
        (fun () -> dispatch t msg)
    with
    | `Accepted -> ()
    | `Rejected ->
      Engine.trace_event t.engine ~actor:t.dev_name ~kind:"device.busy"
        (Printf.sprintf "%s rejected, monitor queue full"
           (Message.payload_tag msg.payload));
      (* NACK requests so the sender can back off; drop responses silently
         (the requester's timeout covers them, and NACKing a NACK loops). *)
      if (not (response_like msg.payload)) && msg.src >= 0 then begin
        let retry_after_ns = Station.drain_ns t.station ~now in
        Metrics.incr t.m_sent;
        Sysbus.send t.sysbus
          (Message.make ~src:t.dev_id ~dst:(Types.Device msg.src) ~corr:msg.corr
             (Message.Error_msg
                {
                  code = Types.E_busy;
                  detail = Message.busy_detail ~retry_after_ns;
                }))
      end

let dma t ~pasid =
  match Hashtbl.find_opt t.dmas pasid with
  | Some d -> d
  | None ->
    let d = Dma.create ~iommu:t.iommu ~pasid ~mem:t.mem in
    Hashtbl.replace t.dmas pasid d;
    d

(* Checkpointing: counters, the recent-corr dedup ring, open connections,
   circuit breakers and per-PASID DMA access counts — everything a resumed
   run observes. [pending] continuations are deliberately not saved: at a
   quiescent checkpoint every in-flight request has either completed or
   timed out, so the table holds at most dead entries whose responses were
   already lost. *)
module Snapshot = Lastcpu_sim.Snapshot

let save_state t =
  let w = Snapshot.W.create () in
  Snapshot.W.varint w t.next_corr;
  Snapshot.W.varint w t.next_conn;
  Snapshot.W.varint w t.next_queue;
  Snapshot.W.array w (fun w c -> Snapshot.W.vint w c) t.recent;
  Snapshot.W.varint w t.recent_idx;
  Snapshot.W.list w
    (fun w (conn, (info : connection_info)) ->
      Snapshot.W.varint w conn;
      Snapshot.W.string w info.service;
      Snapshot.W.vint w info.client;
      Snapshot.W.vint w info.conn_pasid)
    (Detmap.bindings t.conns);
  Snapshot.W.list w
    (fun w (peer, (b : breaker)) ->
      Snapshot.W.vint w peer;
      (match b.state with
      | Closed -> Snapshot.W.u8 w 0
      | Open until ->
        Snapshot.W.u8 w 1;
        Snapshot.W.i64 w until
      | Half_open -> Snapshot.W.u8 w 2);
      Snapshot.W.varint w b.failures)
    (Detmap.bindings t.breakers);
  Snapshot.W.list w
    (fun w (pasid, d) ->
      Snapshot.W.vint w pasid;
      Snapshot.W.varint w (Dma.accesses d))
    (Detmap.bindings t.dmas);
  Snapshot.W.contents w

let restore_state t body =
  let r = Snapshot.R.of_string body in
  t.next_corr <- Snapshot.R.varint r;
  t.next_conn <- Snapshot.R.varint r;
  t.next_queue <- Snapshot.R.varint r;
  let ring = Snapshot.R.array r Snapshot.R.vint in
  if Array.length ring <> recent_size then
    invalid_arg "Device.restore: recent-ring size differs from checkpoint";
  Array.blit ring 0 t.recent 0 recent_size;
  t.recent_idx <- Snapshot.R.varint r;
  Hashtbl.reset t.conns;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let conn_id = Snapshot.R.varint r in
    let service = Snapshot.R.string r in
    let client = Snapshot.R.vint r in
    let conn_pasid = Snapshot.R.vint r in
    Hashtbl.replace t.conns conn_id { conn_id; service; client; conn_pasid }
  done;
  Hashtbl.reset t.breakers;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let peer = Snapshot.R.vint r in
    let state =
      match Snapshot.R.u8 r with
      | 0 -> Closed
      | 1 -> Open (Snapshot.R.i64 r)
      | 2 -> Half_open
      | _ -> raise (Snapshot.R.Corrupt "bad breaker state tag")
    in
    let failures = Snapshot.R.varint r in
    Hashtbl.replace t.breakers peer { state; failures }
  done;
  let n = Snapshot.R.varint r in
  for _ = 1 to n do
    let pasid = Snapshot.R.vint r in
    let accesses = Snapshot.R.varint r in
    Dma.set_accesses (dma t ~pasid) accesses
  done

let create ?shard sysbus ~mem ~name ?tlb_sets ?tlb_ways ?(no_tlb = false) () =
  let engine = Sysbus.engine sysbus in
  let m = Engine.metrics engine in
  let actor = Metrics.claim_actor m name in
  let iommu =
    Iommu.create ?tlb_sets ?tlb_ways ~no_tlb ~metrics:m
      ~actor:(actor ^ ".iommu") ()
  in
  let counter n = Metrics.counter m ~actor ~name:n in
  let queue_capacity = Sysbus.device_queue_capacity sysbus in
  let station_telemetry =
    match queue_capacity with None -> None | Some _ -> Some (m, actor)
  in
  let t =
    {
      dev_id = -1;
      dev_name = name;
      sysbus;
      engine;
      mem;
      iommu;
      station =
        Station.create ?capacity:queue_capacity ?telemetry:station_telemetry
          engine;
      services = [];
      app_handler = None;
      fault_handler = None;
      is_started = false;
      via_bus_doorbells = false;
      pending = Hashtbl.create 16;
      doorbells = Hashtbl.create 4;
      dmas = Hashtbl.create 4;
      conns = Hashtbl.create 8;
      next_corr = 0;
      next_conn = 1;
      next_queue = 1;
      recent = Array.make recent_size (-1);
      recent_idx = 0;
      failed_watchers = [];
      actor;
      m_handled = counter "handled";
      m_sent = counter "sent";
      m_faults = counter "faults";
      m_discover_late = counter "discover_late";
      m_request_late = counter "request_late";
      m_retries = counter "retries";
      m_gave_up = counter "gave_up";
      breakers = Hashtbl.create 4;
      breaker_cfg = None;
      m_breaker_opened = None;
      m_breaker_fast_fails = None;
      m_expired = None;
      m_forged_failures = None;
    }
  in
  let id =
    Sysbus.attach ?shard sysbus ~name ~iommu ~handler:(fun msg -> handle t msg)
  in
  t.dev_id <- id;
  Engine.register_snapshot engine ~name:("dev:" ^ actor)
    ~save:(fun () -> save_state t)
    ~restore:(restore_state t);
  Iommu.attach_fault_handler iommu (fun fault ->
      Metrics.incr t.m_faults;
      Engine.trace_event engine ~actor:name ~kind:"device.fault"
        (Printf.sprintf "pasid=%d va=0x%Lx %s" fault.Iommu.pasid fault.Iommu.va
           (match fault.Iommu.reason with
           | Iommu.Not_mapped -> "not-mapped"
           | Iommu.Protection -> "protection"));
      match t.fault_handler with Some f -> f fault | None -> ());
  t

let id t = t.dev_id
let name t = t.dev_name
let bus t = t.sysbus
let engine t = t.engine
let shard t = Sysbus.device_shard t.sysbus t.dev_id

let add_service t impl =
  t.services <- t.services @ [ impl ];
  (* A device that loads a new application after boot re-announces itself
     so the bus's service registry stays current (§2.2). *)
  if t.is_started then begin
    Metrics.incr t.m_sent;
    Sysbus.send t.sysbus
      (Message.make ~src:t.dev_id ~dst:Types.Bus ~corr:0
         (Message.Device_alive
            { services = List.map (fun s -> s.desc) t.services }))
  end

let fresh_corr t =
  let c = (t.dev_id lsl 20) lor (t.next_corr land 0xfffff) in
  t.next_corr <- t.next_corr + 1;
  c

let fresh_connection t =
  let c = t.next_conn in
  t.next_conn <- c + 1;
  c

(* Queue ids are device-scoped (the device id prefixes the low counter
   bits), so the counter lives on the device, not in a process global:
   experiments running concurrently on separate domains must not share
   mutable state, and a shared counter would make queue-id values depend
   on cross-run interleaving. *)
let fresh_queue_id t =
  let q = (t.dev_id lsl 12) lor (t.next_queue land 0xfff) in
  t.next_queue <- t.next_queue + 1;
  q

let start t =
  if not t.is_started then begin
    t.is_started <- true;
    let costs = Engine.costs t.engine in
    (* Self-test: a short deterministic delay before announcing. *)
    let self_test = Int64.mul 10L costs.Costs.device_process_ns in
    Engine.schedule t.engine ~delay:self_test (fun () ->
        Metrics.incr t.m_sent;
        Sysbus.send t.sysbus
          (Message.make ~src:t.dev_id ~dst:Types.Bus ~corr:(fresh_corr t)
             (Message.Device_alive
                { services = List.map (fun s -> s.desc) t.services }));
        if Faults.active (Engine.faults t.engine) then announce_until_live t 8)
  end

let started t = t.is_started
let on_doorbell t ~queue f = Hashtbl.replace t.doorbells queue f
let clear_doorbell t ~queue = Hashtbl.remove t.doorbells queue
let set_app_handler t f = t.app_handler <- Some f
let on_fault t f = t.fault_handler <- Some f
let fault_count t = Metrics.counter_value t.m_faults

let enable_heartbeat t ~period =
  assert (period > 0L);
  let rec beat () =
    if Sysbus.is_live t.sysbus t.dev_id then begin
      Metrics.incr t.m_sent;
      Sysbus.send t.sysbus
        (Message.make ~src:t.dev_id ~dst:Types.Bus ~corr:0 Message.Heartbeat)
    end;
    Engine.schedule t.engine ~delay:period beat
  in
  Engine.schedule t.engine ~delay:period beat

let send t ~dst payload =
  Metrics.incr t.m_sent;
  Sysbus.send t.sysbus (Message.make ~src:t.dev_id ~dst ~corr:0 payload)

let reply t ~to_ ~corr payload =
  Metrics.incr t.m_sent;
  Sysbus.send t.sysbus
    (Message.make ~src:t.dev_id ~dst:(Types.Device to_) ~corr payload)

(* --- circuit breaker ------------------------------------------------------ *)

let bus_peer = -1 (* breaker key for requests addressed to the bus *)

let peer_of_dst = function Types.Device d -> d | Types.Bus | Types.Broadcast -> bus_peer

let enable_circuit_breaker t ~threshold ~cooldown_ns =
  if threshold <= 0 then invalid_arg "enable_circuit_breaker: threshold";
  if cooldown_ns <= 0L then invalid_arg "enable_circuit_breaker: cooldown_ns";
  let m = Engine.metrics t.engine in
  t.breaker_cfg <- Some { threshold; cooldown_ns };
  t.m_breaker_opened <- Some (Metrics.counter m ~actor:t.actor ~name:"breaker_opened");
  t.m_breaker_fast_fails <-
    Some (Metrics.counter m ~actor:t.actor ~name:"breaker_fast_fails")

let breaker_for t peer =
  match Hashtbl.find_opt t.breakers peer with
  | Some b -> b
  | None ->
    let b = { state = Closed; failures = 0 } in
    Hashtbl.replace t.breakers peer b;
    b

let breaker_is_open t peer =
  match t.breaker_cfg with
  | None -> false
  | Some _ -> (
    match (breaker_for t peer).state with
    | Open until -> Engine.now t.engine < until
    | Closed | Half_open -> false)

(* A busy answer (including the local "request timed out" give-up) or the
   bus bouncing the frame off a dead peer is a failure; anything else —
   even an application-level error — proves the peer is alive and
   serving, and closes the breaker. *)
let observe_peer_result t peer (payload : Message.payload) =
  match t.breaker_cfg with
  | None -> ()
  | Some { threshold; cooldown_ns } -> (
    let b = breaker_for t peer in
    match payload with
    | Message.Error_msg
        { code = Types.E_busy | Types.E_device_failed; detail } ->
      b.failures <- b.failures + 1;
      let probe_failed = b.state = Half_open in
      if b.failures >= threshold || probe_failed then begin
        (* Honor the peer's retry-after hint when it outlasts our own
           cooldown: reopening earlier would just buy another rejection. *)
        let window =
          match Message.retry_after_of_detail detail with
          | Some ns when ns > cooldown_ns -> ns
          | _ -> cooldown_ns
        in
        b.state <- Open (Int64.add (Engine.now t.engine) window);
        (match t.m_breaker_opened with Some c -> Metrics.incr c | None -> ());
        Engine.trace_event t.engine ~actor:t.dev_name ~kind:"device.breaker-open"
          (Printf.sprintf "peer=%d failures=%d window=%Ldns" peer b.failures
             window)
      end
    | _ ->
      if b.failures > 0 || b.state <> Closed then
        Engine.trace_event t.engine ~actor:t.dev_name
          ~kind:"device.breaker-close" (Printf.sprintf "peer=%d" peer);
      b.failures <- 0;
      b.state <- Closed)

let request t ?deadline_ns ?timeout ?(retries = 0) ~dst payload k =
  let corr = fresh_corr t in
  let peer = peer_of_dst dst in
  (* The span covers send-to-completion; ending it inside the wrapped
     continuation makes the response and timeout paths both close it
     exactly once, and recording the corr in the recent ring lets a
     response that races the give-up be swallowed instead of leaking. *)
  Engine.begin_span t.engine ~actor:t.actor ~name:"request" ~id:corr;
  let finish payload =
    Engine.end_span t.engine ~actor:t.actor ~name:"request" ~id:corr;
    remember_corr t corr;
    k payload
  in
  let gate =
    match t.breaker_cfg with
    | None -> `Pass
    | Some _ -> (
      let b = breaker_for t peer in
      match b.state with
      | Closed | Half_open -> `Pass
      | Open until ->
        let now = Engine.now t.engine in
        if now >= until then begin
          (* Cooldown elapsed: let this request through as the probe. *)
          b.state <- Half_open;
          `Pass
        end
        else `Fast_fail (Int64.sub until now))
  in
  match gate with
  | `Fast_fail remaining ->
    (* Shed locally, costing nothing downstream. The synthetic busy reply
       deliberately bypasses [observe_peer_result]: fast-fails must not
       extend the open window they are caused by. *)
    (match t.m_breaker_fast_fails with Some c -> Metrics.incr c | None -> ());
    Engine.trace_event t.engine ~actor:t.dev_name ~kind:"device.breaker-reject"
      (Printf.sprintf "peer=%d retry-after=%Ldns" peer remaining);
    Engine.schedule t.engine ~delay:0L (fun () ->
        finish
          (Message.Error_msg
             {
               code = Types.E_busy;
               detail = Message.busy_detail ~retry_after_ns:remaining;
             }))
  | `Pass -> (
    let k payload =
      observe_peer_result t peer payload;
      finish payload
    in
    Hashtbl.replace t.pending corr k;
    Metrics.incr t.m_sent;
    Sysbus.send t.sysbus (Message.make ?deadline_ns ~src:t.dev_id ~dst ~corr payload);
    match timeout with
    | None -> ()
    | Some delay ->
      assert (delay > 0L);
      let rec arm attempt delay =
        Engine.schedule t.engine ~delay (fun () ->
            match Hashtbl.find_opt t.pending corr with
            | None -> () (* already answered *)
            | Some k ->
              if attempt < retries then begin
                (* Retransmit with the SAME correlation id, so the receiver
                   side is idempotent: a late answer to the original send
                   completes the retry. Exponential backoff plus a
                   deterministic jitter hashed from (corr, attempt) — never
                   an RNG draw, which would perturb seeded replay. While the
                   peer's breaker is open, skip the resend but keep the
                   timer chain: no retry storm into a known-saturated peer. *)
                if not (breaker_is_open t peer) then begin
                  Metrics.incr t.m_retries;
                  Metrics.incr t.m_sent;
                  Sysbus.send t.sysbus
                    (Message.make ?deadline_ns ~src:t.dev_id ~dst ~corr payload)
                end;
                let jitter =
                  Int64.of_int (((corr * 0x9E3779B1) + (attempt * 977)) land 0xff)
                in
                arm (attempt + 1) (Int64.add (Int64.mul delay 2L) jitter)
              end
              else begin
                Hashtbl.remove t.pending corr;
                Metrics.incr t.m_gave_up;
                k
                  (Message.Error_msg
                     { code = Types.E_busy; detail = "request timed out" })
              end)
      in
      arm 0 delay)

let default_discover_timeout = 1_000_000L (* 1 ms *)

let discover t ~kind ~query ?(timeout = default_discover_timeout) ?(retries = 0)
    k =
  let corr = fresh_corr t in
  let answered = ref false in
  (* [dispatch] removes the pending entry each time it matches, so the
     handler re-registers itself: providers answering after the first are
     swallowed (and counted) here instead of leaking to the app handler as
     noise. The timeout removes the entry for good. *)
  let rec handler payload =
    Hashtbl.replace t.pending corr handler;
    if not !answered then begin
      answered := true;
      Engine.end_span t.engine ~actor:t.actor ~name:"discover" ~id:corr;
      match payload with
      | Message.Discover_response { provider; service; _ } ->
        k (Some (provider, service))
      | _ -> k None
    end
    else Metrics.incr t.m_discover_late
  in
  Hashtbl.replace t.pending corr handler;
  Engine.begin_span t.engine ~actor:t.actor ~name:"discover" ~id:corr;
  let probe () =
    Metrics.incr t.m_sent;
    Sysbus.send t.sysbus
      (Message.make ~src:t.dev_id ~dst:Types.Broadcast ~corr
         (Message.Discover_request { kind; query }))
  in
  (* A silent window means the broadcast (or every answer) was lost:
     re-probe with the same correlation id, bounded. *)
  let rec arm attempt =
    Engine.schedule t.engine ~delay:timeout (fun () ->
        if !answered then Hashtbl.remove t.pending corr
        else if attempt < retries then begin
          Metrics.incr t.m_retries;
          probe ();
          arm (attempt + 1)
        end
        else begin
          Hashtbl.remove t.pending corr;
          answered := true;
          Engine.end_span t.engine ~actor:t.actor ~name:"discover" ~id:corr;
          k None
        end)
  in
  probe ();
  arm 0

let open_service t ~provider ~service ~pasid ?auth ?(params = []) ?timeout
    ?retries k =
  request t ?timeout ?retries ~dst:(Types.Device provider)
    (Message.Open_service { service; pasid; auth; params })
    (fun payload ->
      match payload with
      | Message.Open_response { accepted = true; connection; shm_bytes; _ } ->
        k (Ok { connection; shm_bytes })
      | Message.Open_response { accepted = false; error; _ } ->
        k (Error (Option.value error ~default:Types.E_invalid))
      | Message.Error_msg { code; _ } -> k (Error code)
      | _ -> k (Error Types.E_invalid))

let close_service t ~provider ~connection =
  send t ~dst:(Types.Device provider) (Message.Close_service { connection })

let alloc t ~memctl ~pasid ~va ~bytes ~perm ?timeout ?retries k =
  request t ?timeout ?retries ~dst:(Types.Device memctl)
    (Message.Alloc_request { pasid; va; bytes; perm })
    (fun payload ->
      match payload with
      | Message.Alloc_response { ok = true; grant = Some token; _ } -> k (Ok token)
      | Message.Alloc_response { ok = true; grant = None; _ } ->
        k (Error Types.E_invalid)
      | Message.Alloc_response { error; _ } ->
        k (Error (Option.value error ~default:Types.E_no_memory))
      | Message.Error_msg { code; _ } -> k (Error code)
      | _ -> k (Error Types.E_invalid))

let grant t ~to_device ~pasid ~va ~bytes ~perm ~auth ?timeout ?retries k =
  request t ?timeout ?retries ~dst:Types.Bus
    (Message.Grant_request { to_device; pasid; va; bytes; perm; auth })
    (fun payload ->
      match payload with
      | Message.Map_complete { ok = true; _ } -> k (Ok ())
      | Message.Map_complete { ok = false; _ } -> k (Error Types.E_bad_address)
      | Message.Error_msg { code; _ } -> k (Error code)
      | _ -> k (Error Types.E_invalid))

let free t ~memctl ~pasid ~va ~bytes k =
  request t ~dst:(Types.Device memctl)
    (Message.Free_request { pasid; va; bytes })
    (fun payload ->
      match payload with
      | Message.Alloc_response { ok = true; _ } -> k (Ok ())
      | Message.Alloc_response { error; _ } ->
        k (Error (Option.value error ~default:Types.E_invalid))
      | Message.Error_msg { code; _ } -> k (Error code)
      | _ -> k (Error Types.E_invalid))

let route_doorbells_via_bus t v = t.via_bus_doorbells <- v

let doorbell t ~dst ~queue =
  if t.via_bus_doorbells then
    send t ~dst:(Types.Device dst) (Message.Doorbell { queue })
  else Sysbus.notify t.sysbus ~src:t.dev_id ~dst ~queue

let on_device_failed t f = t.failed_watchers <- t.failed_watchers @ [ f ]

let connections t = List.map snd (Detmap.bindings t.conns)
let connection_count t = Hashtbl.length t.conns
let messages_handled t = Metrics.counter_value t.m_handled
let requests_sent t = Metrics.counter_value t.m_sent
let late_discover_responses t = Metrics.counter_value t.m_discover_late
let late_responses t = Metrics.counter_value t.m_request_late

let forged_failures t =
  match t.m_forged_failures with None -> 0 | Some c -> Metrics.counter_value c
let request_retries t = Metrics.counter_value t.m_retries
let requests_gave_up t = Metrics.counter_value t.m_gave_up
let actor t = t.actor

let breaker_state t ~peer =
  match Hashtbl.find_opt t.breakers peer with
  | None | Some { state = Closed; _ } -> `Closed
  | Some { state = Open _; _ } -> `Open
  | Some { state = Half_open; _ } -> `Half_open

let breaker_opens t =
  match t.m_breaker_opened with Some c -> Metrics.counter_value c | None -> 0

let breaker_fast_fails t =
  match t.m_breaker_fast_fails with Some c -> Metrics.counter_value c | None -> 0

let messages_expired t =
  match t.m_expired with Some c -> Metrics.counter_value c | None -> 0

let queue_rejections t = Station.jobs_rejected t.station
