(** Self-managing device framework (§2.1).

    A device in the CPU-less system must, on its own:
    - run a self-test and announce itself to the bus ([start]);
    - expose its resources as *services* in a standard way, multiplexing
      them into isolated per-client connections ([add_service],
      connection table);
    - communicate autonomously: discover services it needs, open them,
      request memory — all asynchronous, continuation-passing, over the
      bus ([discover], [open_service], [alloc], [grant]);
    - handle its own errors: IOMMU faults are delivered here, not to any
      central entity ([on_fault], §4).

    The framework owns the device's IOMMU and exposes memory only through
    {!dma} views, so application code on a device cannot bypass
    translation. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Iommu = Lastcpu_iommu.Iommu
module Dma = Lastcpu_virtio.Dma

type t

(** Outcome of opening a connection to one of this device's services. *)
type open_accept = {
  connection : int;
  shm_bytes : int64;  (** shared memory the service needs (Fig. 2 step 4) *)
}

type service_impl = {
  desc : Message.service_desc;
  can_serve : query:string -> bool;
      (** does this instance serve e.g. this file name? (Fig. 2 step 2) *)
  on_open :
    client:Types.device_id ->
    pasid:int ->
    auth:Token.t option ->
    params:(string * string) list ->
    (open_accept, Types.error_code) result;
  on_close : connection:int -> unit;
}

val create :
  ?shard:int ->
  Lastcpu_bus.Sysbus.t ->
  mem:Lastcpu_mem.Physmem.t ->
  name:string ->
  ?tlb_sets:int ->
  ?tlb_ways:int ->
  ?no_tlb:bool ->
  unit ->
  t
(** Attach a new device to the bus (not yet live; call [start]). [shard]
    (default the bus's home shard) is the slot's shard affinity — see
    {!Lastcpu_bus.Sysbus.attach}. *)

val id : t -> Types.device_id
val name : t -> string

val shard : t -> int
(** The device slot's shard affinity on its bus. *)

val bus : t -> Lastcpu_bus.Sysbus.t
val engine : t -> Lastcpu_sim.Engine.t

val dma : t -> pasid:int -> Dma.t
(** This device's translated view of memory for one address space. *)

val add_service : t -> service_impl -> unit
(** Register a service. Before [start] it is announced with the initial
    [Device_alive]; after [start] the device re-announces itself with the
    updated service list (application loaded at runtime). *)

val fresh_connection : t -> int
(** Mint a connection id (for [on_open] implementations). *)

val fresh_queue_id : t -> int
(** Mint a run-unique virtqueue id, prefixed with this device's id. The
    counter is per-device (not a process global) so concurrent experiment
    runs on separate domains stay bit-deterministic. *)

val start : t -> unit
(** Self-test (a short virtual delay), then announce [Device_alive] with
    the registered services (§2.2 System Initialization). *)

val started : t -> bool

val reannounce : t -> unit
(** Immediately resend [Device_alive] — used after a bus-side revive
    (reset recovery, §4) to rejoin the live set. *)

val on_doorbell : t -> queue:int -> (unit -> unit) -> unit
(** Register a handler for data-plane doorbells aimed at [queue]. Doorbells
    with no registered queue fall through to the app handler. *)

val clear_doorbell : t -> queue:int -> unit

val set_app_handler : t -> (Message.t -> unit) -> unit
(** Receives messages the framework does not consume (e.g. [App_message],
    [Doorbell], [Device_failed], [Resource_failed]). *)

val on_fault : t -> (Iommu.fault -> unit) -> unit
(** Device-local fault policy (§4): default is to count and trace. *)

val on_device_failed : t -> (device:Types.device_id -> unit) -> unit
(** Register a watcher for bus [Device_failed] broadcasts. Watchers run
    before the app handler (which still receives the message), so
    supervisors — e.g. a client failing over to another provider — can
    react without stealing the single app-handler slot. *)

val fault_count : t -> int

val enable_heartbeat : t -> period:int64 -> unit
(** Periodically send [Heartbeat] (pairs with the bus's liveness sweep). *)

(** {1 Client-side asynchronous operations}

    All take a continuation; it runs when the response arrives (virtual
    time has advanced by then). *)

val discover :
  t ->
  kind:Types.service_kind ->
  query:string ->
  ?timeout:int64 ->
  ?retries:int ->
  ((Types.device_id * Message.service_desc) option -> unit) ->
  unit
(** Broadcast discovery (Fig. 2 step 1); continuation gets the first
    provider to answer, or [None] once [timeout] (default 1 ms) has expired
    [retries + 1] times (default [retries = 0]). A silent window re-probes
    with the same correlation id — under fault injection the broadcast
    itself can be lost. Re-probes count toward [request_retries]. *)

val open_service :
  t ->
  provider:Types.device_id ->
  service:Message.service_desc ->
  pasid:int ->
  ?auth:Token.t ->
  ?params:(string * string) list ->
  ?timeout:int64 ->
  ?retries:int ->
  ((open_accept, Types.error_code) result -> unit) ->
  unit
(** Fig. 2 step 3/4. [timeout]/[retries] as in {!request}. *)

val close_service : t -> provider:Types.device_id -> connection:int -> unit

val alloc :
  t ->
  memctl:Types.device_id ->
  pasid:int ->
  va:int64 ->
  bytes:int64 ->
  perm:Types.perm ->
  ?timeout:int64 ->
  ?retries:int ->
  ((Token.t, Types.error_code) result -> unit) ->
  unit
(** Fig. 2 steps 5/6: ask the memory controller for memory at [va]; the
    controller authorizes and instructs the bus to program this device's
    IOMMU; the continuation receives the capability token (for later
    grants) once the mapping is complete. *)

val grant :
  t ->
  to_device:Types.device_id ->
  pasid:int ->
  va:int64 ->
  bytes:int64 ->
  perm:Types.perm ->
  auth:Token.t ->
  ?timeout:int64 ->
  ?retries:int ->
  ((unit, Types.error_code) result -> unit) ->
  unit
(** Fig. 2 step 7: extend access to shared memory to another device. *)

val free :
  t ->
  memctl:Types.device_id ->
  pasid:int ->
  va:int64 ->
  bytes:int64 ->
  ((unit, Types.error_code) result -> unit) ->
  unit

val request :
  t ->
  ?deadline_ns:int64 ->
  ?timeout:int64 ->
  ?retries:int ->
  dst:Types.dest ->
  Message.payload ->
  (Message.payload -> unit) ->
  unit
(** Generic correlated request: continuation fires on the first response
    bearing the same correlation id. When [timeout] is given and no
    response arrives in time, the request is retransmitted up to [retries]
    times (default 0) with the same correlation id — idempotent at the
    receiver — under exponential backoff with deterministic jitter; after
    the final timeout the continuation receives a synthetic
    [Error_msg E_busy] — devices must handle unresponsive peers themselves
    (§4 error handling). A response arriving after the give-up is swallowed
    and counted ([late_responses]), never leaked to the app handler.

    [deadline_ns] (absolute virtual time) rides on the message and its
    retransmits: any hop past the deadline sheds the message instead of
    servicing it. With the circuit breaker enabled, a request to a peer
    whose breaker is open completes on the next tick with a synthetic
    [Error_msg E_busy] carrying the remaining window as a retry-after hint,
    without touching the bus; retransmits are likewise suppressed while the
    breaker is open. *)

(** {1 Overload protection} *)

val enable_circuit_breaker : t -> threshold:int -> cooldown_ns:int64 -> unit
(** Arm a per-peer circuit breaker on {!request}: after [threshold]
    consecutive failures to a peer — busy answers, timeout give-ups, or
    the bus bouncing the frame off a dead device — the breaker opens for
    [cooldown_ns] (or the peer's retry-after hint, whichever is longer) and
    new requests fast-fail locally; the first request after the window is a
    half-open probe whose outcome closes or reopens the breaker. Registers
    [breaker_opened]/[breaker_fast_fails] counters under this device's
    actor. Off by default. *)

val breaker_state : t -> peer:Types.device_id -> [ `Closed | `Open | `Half_open ]
(** Current breaker state for a peer (bus = peer [-1]); [`Closed] when the
    breaker is disabled or the peer has never failed. *)

val breaker_opens : t -> int
val breaker_fast_fails : t -> int

val messages_expired : t -> int
(** Inbound messages shed because their deadline had passed. *)

val queue_rejections : t -> int
(** Inbound messages rejected because the bounded monitor queue was full
    (only when the system configures [device_queue_capacity]). *)

val send : t -> dst:Types.dest -> Message.payload -> unit
(** Fire-and-forget (no correlation). *)

val reply : t -> to_:Types.device_id -> corr:int -> Message.payload -> unit
(** Answer a request received in the app handler, echoing its correlation
    id so the requester's continuation fires. *)

val doorbell : t -> dst:Types.device_id -> queue:int -> unit
(** Data-plane notification: modelled as a direct memory write (cheap,
    does not transit the bus's message processor — §2.3). Set
    [route_doorbells_via_bus] to conflate planes (T3 ablation). *)

val route_doorbells_via_bus : t -> bool -> unit

(** {1 Connection table introspection} *)

type connection_info = {
  conn_id : int;
  service : string;
  client : Types.device_id;
  conn_pasid : int;
}

val connections : t -> connection_info list
val connection_count : t -> int

(** {1 Counters}

    Thin reads over the engine registry: the live instruments are
    [actor t]/handled|sent|faults|discover_late (plus the device's IOMMU
    under [actor t ^ ".iommu"]). *)

val messages_handled : t -> int
val requests_sent : t -> int

val late_discover_responses : t -> int
(** Discover answers that arrived after the first (swallowed, not leaked
    to the app handler). *)

val late_responses : t -> int
(** Responses that arrived after their request already completed (timed
    out or was answered by a duplicate); swallowed and counted. *)

val forged_failures : t -> int
(** [Device_failed] notifications that claimed a peer source. Only the bus
    (src < 0) legitimately originates failure broadcasts; peer-sourced ones
    are counted here and never acted on. *)

val request_retries : t -> int
(** Timed-out requests that were retransmitted. *)

val requests_gave_up : t -> int
(** Requests that exhausted all retries and completed with [E_busy]. *)

val actor : t -> string
(** Registry actor name this device claimed (its [name], uniquified). *)
