module Engine = Lastcpu_sim.Engine
module Station = Lastcpu_sim.Station
module Metrics = Lastcpu_sim.Metrics
module Faults = Lastcpu_sim.Faults
module Sanitizer = Lastcpu_sim.Sanitizer
module Snapshot = Lastcpu_sim.Snapshot
module Ownership = Lastcpu_sim.Ownership

type endpoint = {
  net : t;
  addr : int;
  ep_name : string;
  ep_shard : int;  (* affinity; <> home shard makes this a boundary port *)
  egress : Station.t;  (* serialisation port: models finite link bandwidth *)
  mutable rx : (src:int -> string -> unit) option;
}

and t = {
  engine : Engine.t;
  actor : string;
  home_shard : int;
  (* Cross-shard uplink, wired by the run's shard glue. Frames addressed
     to an endpoint with remote affinity are handed here after
     serialisation instead of flying the local link. *)
  mutable boundary : (dst_shard:int -> src:int -> dst:int -> string -> unit) option;
  mutable endpoints : endpoint array;
  names : (string, int) Hashtbl.t;
  m_delivered : Metrics.counter;
  m_dropped : Metrics.counter;
  m_bytes : Metrics.counter;
  (* Lazy, like Sysbus's boundary counter: single-shard runs must keep a
     telemetry snapshot identical to pre-shard builds. *)
  mutable m_boundary_out : Metrics.counter option;
  (* Ownership tag for the dynamic shard sanitizer (see Sysbus). *)
  owner_cell : Ownership.tracker;
}

(* Checkpoint hook. Frame counters live in Metrics (restored there); what
   the fabric itself must carry across a restore is the endpoint roster —
   name, shard affinity, egress-port accounting. A checkpointed run may
   have created endpoints the rebuilt topology does not recreate (workload
   phases attach fresh clients, then abandon them); those are restored as
   receiverless placeholders so the address counter lines up and
   endpoints attached after the resume get the same addresses they would
   have gotten in the uninterrupted run. *)
let save_state t =
  let w = Snapshot.W.create () in
  Snapshot.W.array w
    (fun w ep ->
      Snapshot.W.string w ep.ep_name;
      Snapshot.W.vint w ep.ep_shard;
      Station.save w ep.egress)
    t.endpoints;
  Snapshot.W.contents w

let restore_state t s =
  let r = Snapshot.R.of_string s in
  let n = Snapshot.R.varint r in
  for i = 0 to n - 1 do
    let name = Snapshot.R.string r in
    let ep_shard = Snapshot.R.vint r in
    let ep =
      if i < Array.length t.endpoints then begin
        let ep = t.endpoints.(i) in
        if not (String.equal ep.ep_name name) then
          invalid_arg
            (Printf.sprintf
               "Netsim.restore_state: endpoint %d is %S, checkpoint has %S" i
               ep.ep_name name);
        ep
      end
      else begin
        let ep =
          {
            net = t;
            addr = i;
            ep_name = name;
            ep_shard;
            egress = Station.create t.engine;
            rx = None;
          }
        in
        t.endpoints <- Array.append t.endpoints [| ep |];
        Hashtbl.replace t.names name i;
        ep
      end
    in
    Station.restore r ep.egress
  done

let create ?(shard = 0) engine =
  let m = Engine.metrics engine in
  let actor = Metrics.claim_actor m "net" in
  let t =
    {
      engine;
      actor;
      home_shard = shard;
      boundary = None;
      endpoints = [||];
      names = Hashtbl.create 8;
      m_delivered = Metrics.counter m ~actor ~name:"frames_delivered";
      m_dropped = Metrics.counter m ~actor ~name:"frames_dropped";
      m_bytes = Metrics.counter m ~actor ~name:"bytes_carried";
      m_boundary_out = None;
      owner_cell = Ownership.tracker ~name:("net:" ^ actor) ~owner:shard;
    }
  in
  Engine.register_snapshot engine ~name:t.actor
    ~save:(fun () -> save_state t)
    ~restore:(fun s -> restore_state t s);
  t

let home_shard t = t.home_shard

let set_boundary t uplink =
  if t.boundary <> None then
    invalid_arg "Netsim.set_boundary: boundary uplink already wired";
  t.boundary <- Some uplink

let boundary_out t =
  match t.m_boundary_out with None -> 0 | Some c -> Metrics.counter_value c

let bump_boundary_out t =
  let c =
    match t.m_boundary_out with
    | Some c -> c
    | None ->
      let m = Engine.metrics t.engine in
      let c = Metrics.counter m ~actor:t.actor ~name:"boundary_out" in
      t.m_boundary_out <- Some c;
      c
  in
  Metrics.incr c

let endpoint ?shard t ~name =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Netsim.endpoint: duplicate name %S" name);
  let addr = Array.length t.endpoints in
  let ep_shard = match shard with None -> t.home_shard | Some s -> s in
  let ep =
    {
      net = t;
      addr;
      ep_name = name;
      ep_shard;
      egress = Station.create t.engine;
      rx = None;
    }
  in
  t.endpoints <- Array.append t.endpoints [| ep |];
  Hashtbl.replace t.names name addr;
  ep

let address ep = ep.addr
let name ep = ep.ep_name
let shard ep = ep.ep_shard
let endpoint_count t = Array.length t.endpoints
let set_receiver ep f = ep.rx <- Some f

let serialisation_ns t frame =
  let costs = Engine.costs t.engine in
  Int64.mul costs.Lastcpu_sim.Costs.net_byte_ns
    (Int64.of_int (String.length frame))

let link_ns t = (Engine.costs t.engine).Lastcpu_sim.Costs.net_link_ns

let deliver t ~src ~dst frame =
  if dst < 0 || dst >= Array.length t.endpoints then Metrics.incr t.m_dropped
  else begin
    match t.endpoints.(dst).rx with
    | None -> Metrics.incr t.m_dropped
    | Some rx ->
      Metrics.incr t.m_delivered;
      Metrics.incr ~by:(String.length frame) t.m_bytes;
      rx ~src frame
  end

let inject t ~src ~dst frame = deliver t ~src ~dst frame

(* Fault content key: equals [Faults.key_of_string] of
   ["net:<src>><dst>:<frame>"], folded directly through the streaming FNV
   so the hot path never materialises that description (which would copy
   the whole frame into a fresh string). *)
let frame_fault_key ~src ~dst frame =
  let h = Sanitizer.fnv_string Faults.key_init "net:" in
  let h = Sanitizer.fnv_int h src in
  let h = Sanitizer.fnv_char h '>' in
  let h = Sanitizer.fnv_int h dst in
  let h = Sanitizer.fnv_char h ':' in
  Sanitizer.fnv_finish (Sanitizer.fnv_string h frame)

let fly t ~src ~dst ~extra frame =
  let delay = Int64.add (link_ns t) extra in
  let deliver () = deliver t ~src ~dst frame in
  if Engine.sanitizing t.engine then
    Engine.schedule
      ~label:(fun () -> Printf.sprintf "net:%d>%d" src dst)
      t.engine ~delay deliver
  else Engine.schedule t.engine ~delay deliver

let boundary_post t ~src ~dst frame =
  match t.boundary with
  | None ->
    invalid_arg
      (Printf.sprintf
         "Netsim: frame for remote endpoint %d but no boundary uplink wired"
         dst)
  | Some uplink ->
    bump_boundary_out t;
    Metrics.incr ~by:(String.length frame) t.m_bytes;
    uplink ~dst_shard:t.endpoints.(dst).ep_shard ~src ~dst frame

let send ep ~dst frame =
  let t = ep.net in
  Ownership.touch t.owner_cell;
  let src = ep.addr in
  (* Serialise through the egress port (queueing under load), then fly the
     link. The fault plan can drop the frame on the wire or add delay
     (which reorders it past later frames). *)
  Station.submit ep.egress ~service:(serialisation_ns t frame) (fun () ->
      if dst >= 0 && dst < Array.length t.endpoints
         && t.endpoints.(dst).ep_shard <> t.home_shard
      then
        (* Remote port: serialisation is paid locally, then the frame rides
           the boundary uplink — the local link latency and fault plan do
           not apply past the border. *)
        boundary_post t ~src ~dst frame
      else begin
        let faults = Engine.faults t.engine in
        if not (Faults.active faults) then fly t ~src ~dst ~extra:0L frame
        else begin
          let key = frame_fault_key ~src ~dst frame in
          if Faults.drop_frame faults ~key then Metrics.incr t.m_dropped
          else fly t ~src ~dst ~extra:(Faults.reorder_delay faults ~key) frame
        end
      end)

let broadcast ep frame =
  let t = ep.net in
  Array.iter
    (fun other -> if other.addr <> ep.addr then send ep ~dst:other.addr frame)
    t.endpoints

let frames_delivered t = Metrics.counter_value t.m_delivered
let frames_dropped t = Metrics.counter_value t.m_dropped
let bytes_carried t = Metrics.counter_value t.m_bytes
