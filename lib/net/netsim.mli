(** Simulated network: a single switch connecting named endpoints.

    The smart NIC attaches here to serve remote KVS clients (§3: "the NIC
    exposes a KVS interface to other machines over the network"). Delivery
    is scheduled on the simulation engine with a per-link latency plus a
    per-byte serialisation cost from the engine's cost model. Frames to
    unknown endpoints are counted and dropped. *)

type t
type endpoint

val create : ?shard:int -> Lastcpu_sim.Engine.t -> t
(** [shard] (default [0]) is this network's home shard in a temporally
    decoupled run; endpoints default to it. *)

val home_shard : t -> int

val endpoint : ?shard:int -> t -> name:string -> endpoint
(** Attach a new endpoint; names must be unique. [shard] (default the
    network's home shard) is the endpoint's affinity: a remote-affinity
    endpoint is a {e boundary port} — frames sent to it serialise locally,
    then ride the boundary uplink ({!set_boundary}) instead of the local
    link, and its receiver is never invoked locally. *)

val address : endpoint -> int
val name : endpoint -> string

val shard : endpoint -> int
(** The endpoint's shard affinity. *)

(** {1 Cross-shard boundary} *)

val set_boundary :
  t -> (dst_shard:int -> src:int -> dst:int -> string -> unit) -> unit
(** Wire the cross-shard uplink (once, by the run's shard glue). It
    receives the frame after local serialisation; the glue is responsible
    for carrying it to the destination shard (normally via
    {!Lastcpu_sim.Temporal.post}) and handing it to that shard's network
    with {!inject}. [src] and [dst] are this network's address space; the
    glue rewrites them for the far side.
    @raise Invalid_argument if already wired. *)

val inject : t -> src:int -> dst:int -> string -> unit
(** Deliver a frame that arrived from another shard directly to local
    endpoint [dst] (counted as delivered/dropped exactly like local
    traffic). *)

val boundary_out : t -> int
(** Frames handed to the boundary uplink so far. The counter registers
    lazily on first use, so single-shard telemetry is unchanged. *)

val endpoint_count : t -> int
(** Number of attached endpoints. Useful for minting deterministic
    per-network endpoint names ("client-<n>") without any process-global
    counter, which parallel experiment runs must avoid. *)

val set_receiver : endpoint -> (src:int -> string -> unit) -> unit
(** Frame-arrival handler (at most one; replaces any previous). *)

val send : endpoint -> dst:int -> string -> unit
(** Transmit a frame: it first serialises through the sender's egress port
    (a FIFO station at [net_byte_ns] per byte — concurrent sends from one
    endpoint queue behind each other), then traverses the link
    ([net_link_ns]). In-order per sender. *)

val broadcast : endpoint -> string -> unit
(** Deliver to every other endpoint. *)

val frames_delivered : t -> int
val frames_dropped : t -> int
val bytes_carried : t -> int
