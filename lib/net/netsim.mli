(** Simulated network: a single switch connecting named endpoints.

    The smart NIC attaches here to serve remote KVS clients (§3: "the NIC
    exposes a KVS interface to other machines over the network"). Delivery
    is scheduled on the simulation engine with a per-link latency plus a
    per-byte serialisation cost from the engine's cost model. Frames to
    unknown endpoints are counted and dropped. *)

type t
type endpoint

val create : Lastcpu_sim.Engine.t -> t

val endpoint : t -> name:string -> endpoint
(** Attach a new endpoint; names must be unique. *)

val address : endpoint -> int
val name : endpoint -> string

val endpoint_count : t -> int
(** Number of attached endpoints. Useful for minting deterministic
    per-network endpoint names ("client-<n>") without any process-global
    counter, which parallel experiment runs must avoid. *)

val set_receiver : endpoint -> (src:int -> string -> unit) -> unit
(** Frame-arrival handler (at most one; replaces any previous). *)

val send : endpoint -> dst:int -> string -> unit
(** Transmit a frame: it first serialises through the sender's egress port
    (a FIFO station at [net_byte_ns] per byte — concurrent sends from one
    endpoint queue behind each other), then traverses the link
    ([net_link_ns]). In-order per sender. *)

val broadcast : endpoint -> string -> unit
(** Deliver to every other endpoint. *)

val frames_delivered : t -> int
val frames_dropped : t -> int
val bytes_carried : t -> int
