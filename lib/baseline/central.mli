(** The centralized system assembled: CPU kernel + storage + the same
    control-plane vocabulary as the CPU-less design, so experiments can run
    identical workloads on both.

    Mapping of operations (each [»] is CPU core time):

    - [discover]: name lookup in the kernel » (no broadcast — the kernel
      holds the global device table, the paper's "centralized control").
    - [open_file]: syscall » + device command + completion interrupt ».
    - [setup_shared]: the Figure-2 equivalent — mmap syscall » (kernel
      programs both IOMMUs itself) + grant syscall ».
    - file I/O: submit syscall », NAND time off-CPU, completion
      interrupt » (the classic interrupt-driven storage stack).
    - KVS network op: NIC RX interrupt », application work on the CPU,
      file I/O as above, TX syscall ».

    The file system and FTL are the *same implementations* as the smart
    SSD's, so storage behaviour is identical; only the control/coordination
    architecture differs. *)

type t

val create :
  Lastcpu_sim.Engine.t ->
  ?cores:int ->
  ?run_queue_capacity:int ->
  ?geometry:Lastcpu_flash.Nand.geometry ->
  unit ->
  t
(** [run_queue_capacity] bounds the kernel's per-core run queues (see
    {!Kernel.create}); default unbounded. *)

val kernel : t -> Kernel.t
val fs : t -> Lastcpu_fs.Fs.t
val ftl : t -> Lastcpu_flash.Ftl.t

val storage_down : t -> bool
(** True inside a fault-plan crash window: the storage device is gone and
    mediated I/O fails with ["storage device down"] until the kernel's
    reset-device pass at the revive edge. The engine's fault plan also
    injects NAND read faults into this baseline's (identical) flash. *)

(** Control-plane operations (T1/T3 workloads): *)

val discover : t -> query:string -> (unit -> unit) -> unit
val open_file : t -> path:string -> user:string -> ((unit, string) result -> unit) -> unit
val setup_shared : t -> bytes:int64 -> (unit -> unit) -> unit
val teardown_shared : t -> (unit -> unit) -> unit

(** Data-plane file operations (kernel-mediated): *)

val file_read :
  t -> path:string -> user:string -> off:int -> len:int ->
  ((string, string) result -> unit) -> unit

val file_write :
  t -> path:string -> user:string -> off:int -> data:string ->
  ((unit, string) result -> unit) -> unit

val file_create :
  t -> path:string -> user:string -> ((unit, string) result -> unit) -> unit

val file_truncate :
  t -> path:string -> user:string -> len:int -> ((unit, string) result -> unit) -> unit

val store_backend : t -> path:string -> user:string -> Lastcpu_kv.Store.backend
(** A {!Lastcpu_kv.Store} backend whose log I/O goes through the kernel:
    the baseline KVS runs the identical store logic. *)

val kv_network_op :
  t -> ((unit -> unit) -> unit) -> (unit -> unit) -> unit
(** [kv_network_op t work k]: RX interrupt, then [work] (which performs
    store operations and calls its continuation), then a TX syscall, then
    [k]. Models packet-in/packet-out through the CPU. *)

val try_kv_network_op :
  t ->
  ((unit -> unit) -> unit) ->
  on_busy:(retry_after_ns:int64 -> unit) ->
  (unit -> unit) ->
  unit
(** Guarded variant: the RX interrupt goes through
    {!Kernel.try_interrupt}; when the run queues are full the frame is
    refused and [on_busy] fires with the core's drain time instead —
    EAGAIN at the NIC rather than an interrupt storm. The TX completion of
    admitted work is never refused. Identical to {!kv_network_op} when the
    kernel has no [run_queue_capacity]. *)
