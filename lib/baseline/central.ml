module Engine = Lastcpu_sim.Engine
module Costs = Lastcpu_sim.Costs
module Faults = Lastcpu_sim.Faults
module Nand = Lastcpu_flash.Nand
module Ftl = Lastcpu_flash.Ftl
module Fs = Lastcpu_fs.Fs
module Store = Lastcpu_kv.Store

type t = {
  engine : Engine.t;
  kern : Kernel.t;
  ftl : Ftl.t;
  filesystem : Fs.t;
  mutable storage_down : bool;
}

let create engine ?cores ?run_queue_capacity ?geometry () =
  let faults = Engine.faults engine in
  let nand = Nand.create ?geometry ~faults () in
  let ftl = Ftl.create ~nand () in
  let filesystem =
    match Fs.format ftl with
    | Ok fs -> fs
    | Error e -> invalid_arg ("Central.create: " ^ Fs.error_to_string e)
  in
  let t =
    {
      engine;
      kern = Kernel.create engine ?cores ?run_queue_capacity ();
      ftl;
      filesystem;
      storage_down = false;
    }
  in
  (* The fault plan's crash windows apply here too: while the (single)
     storage device is down, mediated I/O fails; at the revive edge the
     kernel runs a reset-device pass before I/O resumes — the centralized
     counterpart of the bus's crash→reset→reannounce sequence. *)
  List.iter
    (fun { Faults.at_ns; down_ns; _ } ->
      Engine.schedule_at engine ~time:at_ns (fun () ->
          Faults.note_crash faults;
          t.storage_down <- true);
      Engine.schedule_at engine ~time:(Int64.add at_ns down_ns) (fun () ->
          Faults.note_revive faults;
          Kernel.syscall t.kern ~name:"reset-device" (fun () ->
              t.storage_down <- false)))
    (Faults.crashes faults);
  t

let storage_down t = t.storage_down

let kernel t = t.kern
let fs t = t.filesystem
let ftl t = t.ftl

let nand_snapshot t =
  let n = Ftl.nand t.ftl in
  (Nand.reads n, Nand.programs n, Nand.total_erases n)

let nand_cost t (r0, p0, e0) =
  let costs = Engine.costs t.engine in
  let r1, p1, e1 = nand_snapshot t in
  Int64.add
    (Int64.mul (Int64.of_int (r1 - r0)) costs.Costs.flash_read_page_ns)
    (Int64.add
       (Int64.mul (Int64.of_int (p1 - p0)) costs.Costs.flash_write_page_ns)
       (Int64.mul (Int64.of_int (e1 - e0)) costs.Costs.flash_erase_block_ns))

(* Control plane ------------------------------------------------------------ *)

let discover t ~query k =
  ignore query;
  Kernel.syscall t.kern ~name:"discover" k

let open_file t ~path ~user k =
  Kernel.syscall t.kern ~name:"open" (fun () ->
      let result =
        match Fs.stat t.filesystem path with
        | Ok _ -> Ok ()
        | Error e -> Error (Fs.error_to_string e)
      in
      ignore user;
      (* Device round trip to validate/open on the storage controller. *)
      Kernel.interrupt t.kern ~name:"open-complete" (fun () -> k result))

let setup_shared t ~bytes k =
  ignore bytes;
  let costs = Engine.costs t.engine in
  (* mmap: kernel allocates frames and programs both devices' IOMMUs
     itself (extra PTE-writing time on the CPU), then a grant syscall. *)
  Kernel.syscall t.kern ~name:"mmap"
    ~extra:(Int64.mul 4L costs.Costs.iommu_program_ns) (fun () ->
      Kernel.syscall t.kern ~name:"grant"
        ~extra:(Int64.mul 2L costs.Costs.iommu_program_ns) k)

let teardown_shared t k =
  Kernel.syscall t.kern ~name:"munmap" k

(* Data plane ---------------------------------------------------------------- *)

(* Kernel-mediated file operation: submission syscall, NAND time off-CPU,
   completion interrupt. *)
let mediated_io t ~name ~(run : unit -> ('a, string) result)
    (k : ('a, string) result -> unit) =
  Kernel.syscall t.kern ~name (fun () ->
      if t.storage_down then
        (* The submit syscall returns EIO immediately: the device node is
           gone until the reset-device pass completes. *)
        k (Error "storage device down")
      else begin
        let snapshot = nand_snapshot t in
        let result = run () in
        let flash = nand_cost t snapshot in
        Engine.schedule t.engine ~delay:flash (fun () ->
            Kernel.interrupt t.kern ~name:(name ^ "-complete") (fun () ->
                k result))
      end)

let lift fs_result =
  match fs_result with Ok v -> Ok v | Error e -> Error (Fs.error_to_string e)

let file_read t ~path ~user ~off ~len k =
  mediated_io t ~name:"read"
    ~run:(fun () -> lift (Fs.read t.filesystem ~user path ~off ~len))
    k

let file_write t ~path ~user ~off ~data k =
  mediated_io t ~name:"write"
    ~run:(fun () -> lift (Fs.write t.filesystem ~user path ~off data))
    k

let file_create t ~path ~user k =
  mediated_io t ~name:"create"
    ~run:(fun () -> lift (Fs.create t.filesystem ~user path))
    k

let file_truncate t ~path ~user ~len k =
  mediated_io t ~name:"truncate"
    ~run:(fun () -> lift (Fs.truncate t.filesystem ~user path ~len))
    k

(* Store backend -------------------------------------------------------------- *)

let store_backend t ~path ~user =
  let log_end = ref 0 in
  (match Fs.stat t.filesystem path with
  | Ok s -> log_end := s.Fs.size
  | Error _ -> (
    match Fs.create t.filesystem ~user path with
    | Ok () -> ()
    | Error e ->
      invalid_arg ("Central.store_backend: " ^ Fs.error_to_string e)));
  {
    Store.append =
      (fun data k ->
        let off = !log_end in
        log_end := off + String.length data;
        file_write t ~path ~user ~off ~data k);
    Store.read_log =
      (fun k ->
        let size = !log_end in
        file_read t ~path ~user ~off:0 ~len:size k);
    Store.reset_log =
      (fun k ->
        log_end := 0;
        file_truncate t ~path ~user ~len:0 k);
    Store.replace_log =
      (fun data k ->
        (* Same sidecar-and-rename discipline, through the kernel. *)
        let sidecar = path ^ ".new" in
        let write_then_rename () =
          file_write t ~path:sidecar ~user ~off:0 ~data (fun res ->
              match res with
              | Error _ as e -> k e
              | Ok () ->
                mediated_io t ~name:"rename"
                  ~run:(fun () -> lift (Fs.rename t.filesystem ~user sidecar path))
                  (fun res ->
                    match res with
                    | Error _ as e -> k e
                    | Ok () ->
                      log_end := String.length data;
                      k (Ok ())))
        in
        match Fs.create t.filesystem ~user sidecar with
        | Ok () | Error (Fs.Exists _) -> (
          match Fs.truncate t.filesystem ~user sidecar ~len:0 with
          | Ok () -> write_then_rename ()
          | Error e -> k (Error (Fs.error_to_string e)))
        | Error e -> k (Error (Fs.error_to_string e)));
  }

(* Network path ---------------------------------------------------------------- *)

let kv_network_op t work k =
  Kernel.interrupt t.kern ~name:"rx" (fun () ->
      work (fun () -> Kernel.syscall t.kern ~name:"tx" k))

let try_kv_network_op t work ~on_busy k =
  (* Guarded ingress: the rx interrupt is refused EAGAIN-style when the
     cores' run queues are full — the NIC would drop or NAK the frame
     instead of interrupt-storming a saturated CPU. The tx completion stays
     unconditional: finishing admitted work sheds load, refusing it would
     only hold memory longer. *)
  match Kernel.try_interrupt t.kern ~name:"rx" (fun () ->
            work (fun () -> Kernel.syscall t.kern ~name:"tx" k))
  with
  | `Ok -> ()
  | `Eagain retry_after_ns -> on_busy ~retry_after_ns
