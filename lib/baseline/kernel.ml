module Engine = Lastcpu_sim.Engine
module Station = Lastcpu_sim.Station
module Costs = Lastcpu_sim.Costs

type t = {
  engine : Engine.t;
  stations : Station.t array;
  run_queue_capacity : int option;
  mutable syscall_count : int;
  mutable interrupt_count : int;
  mutable eagain_count : int;
}

let create engine ?(cores = 1) ?run_queue_capacity () =
  if cores <= 0 then invalid_arg "Kernel.create: cores must be positive";
  (match run_queue_capacity with
  | Some cap when cap <= 0 ->
    invalid_arg "Kernel.create: run_queue_capacity must be positive"
  | _ -> ());
  {
    engine;
    stations = Array.init cores (fun _ -> Station.create ?capacity:run_queue_capacity engine);
    run_queue_capacity;
    syscall_count = 0;
    interrupt_count = 0;
    eagain_count = 0;
  }

(* Least-loaded dispatch approximates an SMP scheduler. *)
let pick t =
  let best = ref t.stations.(0) in
  Array.iter
    (fun s -> if Station.queue_length s < Station.queue_length !best then best := s)
    t.stations;
  !best

let syscall t ~name ?(extra = 0L) k =
  ignore name;
  t.syscall_count <- t.syscall_count + 1;
  let costs = Engine.costs t.engine in
  let service =
    Int64.add costs.Costs.syscall_ns (Int64.add costs.Costs.kernel_op_ns extra)
  in
  Station.submit (pick t) ~service k

let interrupt t ~name ?(extra = 0L) k =
  ignore name;
  t.interrupt_count <- t.interrupt_count + 1;
  let costs = Engine.costs t.engine in
  let service =
    Int64.add costs.Costs.interrupt_ns (Int64.add costs.Costs.kernel_op_ns extra)
  in
  Station.submit (pick t) ~service k

(* Bounded-admission variants: with a run-queue capacity, a full
   least-loaded core refuses the work EAGAIN-style instead of queueing it
   unboundedly; the retry-after hint is that core's drain time. Without a
   capacity these are exactly [syscall]/[interrupt]. *)
let try_syscall t ~name ?(extra = 0L) k =
  let station = pick t in
  let costs = Engine.costs t.engine in
  let service =
    Int64.add costs.Costs.syscall_ns (Int64.add costs.Costs.kernel_op_ns extra)
  in
  ignore name;
  match Station.try_submit station ~service k with
  | `Accepted ->
    t.syscall_count <- t.syscall_count + 1;
    `Ok
  | `Rejected ->
    t.eagain_count <- t.eagain_count + 1;
    `Eagain (Station.drain_ns station ~now:(Engine.now t.engine))

let try_interrupt t ~name ?(extra = 0L) k =
  let station = pick t in
  let costs = Engine.costs t.engine in
  let service =
    Int64.add costs.Costs.interrupt_ns (Int64.add costs.Costs.kernel_op_ns extra)
  in
  ignore name;
  match Station.try_submit station ~service k with
  | `Accepted ->
    t.interrupt_count <- t.interrupt_count + 1;
    `Ok
  | `Rejected ->
    t.eagain_count <- t.eagain_count + 1;
    `Eagain (Station.drain_ns station ~now:(Engine.now t.engine))

let syscalls t = t.syscall_count
let interrupts t = t.interrupt_count
let eagains t = t.eagain_count
let run_queue_capacity t = t.run_queue_capacity
let cores t = Array.length t.stations

let busy_ns t =
  Array.fold_left (fun acc s -> Int64.add acc (Station.busy_ns s)) 0L t.stations

let total_wait_ns t =
  Array.fold_left
    (fun acc s -> Int64.add acc (Station.total_wait_ns s))
    0L t.stations

let utilization t =
  let now = Engine.now t.engine in
  if now <= 0L then 0.
  else
    Int64.to_float (busy_ns t)
    /. (Int64.to_float now *. float_of_int (Array.length t.stations))
