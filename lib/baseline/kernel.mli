(** The centralized comparator's CPU + OS kernel.

    Models the architecture the paper wants to remove: one (or a few)
    general-purpose cores running a monolithic kernel that mediates every
    control operation (and, for the classic configuration, every I/O
    completion) via syscalls and interrupts.

    Each syscall costs a user/kernel crossing plus kernel service time *on
    a CPU core*; cores are FIFO stations, so control operations from all
    applications contend on them — exactly the serialization the
    decentralized design distributes across devices and the bus. *)

type t

val create :
  Lastcpu_sim.Engine.t -> ?cores:int -> ?run_queue_capacity:int -> unit -> t
(** [cores] defaults to 1 (the last CPU...). [run_queue_capacity] bounds
    each core's run queue for the [try_*] admission variants; default
    [None] keeps queues unbounded and [try_*] always accepts. *)

val syscall : t -> name:string -> ?extra:int64 -> (unit -> unit) -> unit
(** [syscall t ~name k]: enter the kernel, run [kernel_op_ns + extra] of
    service on the least-loaded core, then [k] at completion time. *)

val interrupt : t -> name:string -> ?extra:int64 -> (unit -> unit) -> unit
(** Device interrupt: costs [interrupt_ns + kernel_op_ns + extra] of core
    time. *)

val try_syscall :
  t ->
  name:string ->
  ?extra:int64 ->
  (unit -> unit) ->
  [ `Ok | `Eagain of int64 ]
(** EAGAIN-style admission: like [syscall], but when the least-loaded
    core's run queue is at [run_queue_capacity] the work is refused with
    [`Eagain retry_after_ns] (that core's drain time) instead of queueing.
    Without a capacity this always returns [`Ok]. *)

val try_interrupt :
  t ->
  name:string ->
  ?extra:int64 ->
  (unit -> unit) ->
  [ `Ok | `Eagain of int64 ]

val syscalls : t -> int
val interrupts : t -> int

val eagains : t -> int
(** Control operations refused by [try_syscall]/[try_interrupt]. *)

val run_queue_capacity : t -> int option
val cores : t -> int

val busy_ns : t -> int64
(** Total core-time consumed. *)

val total_wait_ns : t -> int64
(** Total queueing delay experienced at the cores. *)

val utilization : t -> float
(** Mean core utilization at current virtual time. *)
