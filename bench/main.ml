(* Benchmark harness.

   Usage:
     dune exec bench/main.exe             # every figure and table + micro suite
     dune exec bench/main.exe f2 t3       # selected experiments
     dune exec bench/main.exe micro       # bechamel micro-benchmarks
     dune exec bench/main.exe all micro   # both
     dune exec bench/main.exe metrics     # telemetry JSON snapshot of a KVS run
     dune exec bench/main.exe core        # engine macro-bench -> BENCH_core.json
     dune exec bench/main.exe all -j 4    # experiment tables across 4 domains

   Each experiment regenerates one figure/table of EXPERIMENTS.md; the
   micro suite has one bechamel Test.make per table, covering that table's
   core primitive; the core suite is the perf-regression baseline for the
   engine hot path (schedule->pop throughput, allocation per event, bus
   routing with tracing on vs off, end-to-end T1 events/sec), written to
   BENCH_core.json for CI to archive. *)

module Experiments = Lastcpu_core.Experiments
module Parallel = Lastcpu_sim.Parallel

(* --- micro-benchmarks (bechamel) ------------------------------------------- *)

module Micro = struct
  open Bechamel
  open Toolkit

  module Types = Lastcpu_proto.Types
  module Message = Lastcpu_proto.Message
  module Codec = Lastcpu_proto.Codec
  module Token = Lastcpu_proto.Token
  module Engine = Lastcpu_sim.Engine
  module Sysbus = Lastcpu_bus.Sysbus
  module Iommu = Lastcpu_iommu.Iommu
  module Pagetable = Lastcpu_iommu.Pagetable
  module Buddy = Lastcpu_mem.Buddy
  module Physmem = Lastcpu_mem.Physmem
  module Vq = Lastcpu_virtio.Virtqueue
  module Dma = Lastcpu_virtio.Dma
  module Store = Lastcpu_kv.Store
  module Wal = Lastcpu_kv.Wal

  let key = 0xFEEDL

  let sample_token =
    Token.mint ~key ~issuer:1 ~subject:2 ~pasid:3 ~resource:"dram"
      ~base:0x1000L ~length:65536L ~perm:Types.perm_rw ~nonce:9L ()

  let sample_msg =
    Message.make ~src:1 ~dst:Lastcpu_proto.Types.Bus ~corr:42
      (Message.Map_directive
         {
           device = 2;
           pasid = 3;
           va = 0x4000_0000L;
           pa = 0x1000_0000L;
           bytes = 65536L;
           perm = Types.perm_rw;
           auth = sample_token;
         })

  (* t1 primitive: one control message encoded + decoded (the bus's
     protocol work). *)
  let bench_codec =
    Test.make ~name:"t1.codec-roundtrip"
      (Staged.stage (fun () -> ignore (Codec.decode (Codec.encode sample_msg))))

  (* t1 primitive: capability verification on the bus. *)
  let bench_token =
    Test.make ~name:"t1.token-verify"
      (Staged.stage (fun () -> ignore (Token.verify ~key sample_token)))

  (* t2/t7 primitive: a KVS get against the in-memory index. *)
  let bench_store_get =
    let store = Store.create (Store.memory_backend ()) in
    Store.put store ~key:"bench" ~value:"value" (fun _ -> ());
    Test.make ~name:"t2.store-get"
      (Staged.stage (fun () -> Store.get store "bench" (fun _ -> ())))

  (* t3 primitive: one message through the bus (hop + station + hop). *)
  let bench_bus_route =
    let engine = Engine.create () in
    let bus = Sysbus.create engine in
    let iommu = Iommu.create () in
    let a = Sysbus.attach bus ~name:"a" ~iommu ~handler:(fun _ -> ()) in
    let b = Sysbus.attach bus ~name:"b" ~iommu ~handler:(fun _ -> ()) in
    Sysbus.send bus
      (Message.make ~src:a ~dst:Types.Bus ~corr:0 (Message.Device_alive { services = [] }));
    Sysbus.send bus
      (Message.make ~src:b ~dst:Types.Bus ~corr:0 (Message.Device_alive { services = [] }));
    Engine.run engine;
    Test.make ~name:"t3.bus-route"
      (Staged.stage (fun () ->
           Sysbus.send bus
             (Message.make ~src:a ~dst:(Types.Device b) ~corr:0 Message.Heartbeat);
           Engine.run engine))

  (* t4 primitive: WAL record encode (the recovery unit of work). *)
  let bench_wal =
    Test.make ~name:"t4.wal-encode"
      (Staged.stage (fun () ->
           ignore (Wal.encode (Wal.Put { key = "key-000042"; value = "value" }))))

  (* t5 primitives: translation with a hot TLB, and a full table walk. *)
  let bench_tlb_hit =
    let iommu = Iommu.create () in
    (match
       Iommu.map iommu ~pasid:1 ~va:0x4000_0000L ~pa:0x1000L ~bytes:4096L
         ~perm:Types.perm_rw
     with
    | Ok () -> ()
    | Error e -> failwith e);
    ignore (Iommu.translate iommu ~pasid:1 ~va:0x4000_0000L ~access:Iommu.Read);
    Test.make ~name:"t5.translate-tlb-hit"
      (Staged.stage (fun () ->
           ignore (Iommu.translate iommu ~pasid:1 ~va:0x4000_0000L ~access:Iommu.Read)))

  let bench_walk =
    let pt = Pagetable.create () in
    (match Pagetable.map pt ~va:0x4000_0000L ~pa:0x1000L ~perm:Types.perm_rw with
    | Ok () -> ()
    | Error e -> failwith e);
    Test.make ~name:"t5.pagetable-walk"
      (Staged.stage (fun () ->
           ignore (Pagetable.walk pt ~va:0x4000_0000L ~access:Types.perm_r)))

  (* t6 primitive: a full virtqueue cycle (add/pop/push/poll). *)
  let bench_vq =
    let mem = Physmem.create () in
    let iommu = Iommu.create () in
    (match
       Iommu.map iommu ~pasid:1 ~va:0x1_0000L ~pa:0x10_0000L
         ~bytes:(Int64.mul 16L 4096L) ~perm:Types.perm_rw
     with
    | Ok () -> ()
    | Error e -> failwith e);
    let dma = Dma.create ~iommu ~pasid:1 ~mem in
    let driver = Vq.Driver.create ~dma ~base:0x1_0000L ~size:8 in
    let device = Vq.Device.create ~dma ~base:0x1_0000L ~size:8 in
    let buf = { Vq.va = 0x1_8000L; len = 64; writable = false } in
    Test.make ~name:"t6.virtqueue-cycle"
      (Staged.stage (fun () ->
           match Vq.Driver.add driver [ buf ] with
           | Error e -> failwith e
           | Ok _ -> (
             match Vq.Device.pop device with
             | None -> failwith "empty"
             | Some { Vq.Device.head; _ } ->
               Vq.Device.push_used device ~head ~written:0;
               ignore (Vq.Driver.poll_used driver))))

  (* t8 primitive: fault delivery path. *)
  let bench_fault =
    let iommu = Iommu.create () in
    Iommu.attach_fault_handler iommu (fun _ -> ());
    Test.make ~name:"t8.fault-delivery"
      (Staged.stage (fun () ->
           ignore (Iommu.translate iommu ~pasid:9 ~va:0xDEAD_0000L ~access:Iommu.Read)))

  (* t13 primitive: CRC-framed codec roundtrip (the corruption-detection
     tax every fault-checked delivery pays). *)
  let bench_framed =
    Test.make ~name:"t13.framed-roundtrip"
      (Staged.stage (fun () ->
           ignore (Codec.decode_framed (Codec.encode_framed sample_msg))))

  (* tooling: lastcpu-lint scan of one representative source file (the
     per-file cost that bounds `dune build @lint` wall time). *)
  let bench_lint =
    let config =
      Lint_core.parse_rules
        "D001 scope=lib\nD002 scope=lib\nD003 scope=lib\nD004 scope=lib\n\
         D005 scope=lib"
    in
    let source =
      String.concat "\n"
        (List.init 40 (fun i ->
             Printf.sprintf
               "let f%d tbl = Hashtbl.replace tbl %d (List.map succ [%d])" i i i))
    in
    Test.make ~name:"lint.scan-file"
      (Staged.stage (fun () ->
           ignore (Lint_core.scan_string config ~path:"lib/bench.ml" source)))

  (* substrate: buddy allocator cycle. *)
  let bench_buddy =
    let b = Buddy.create ~base:0L ~pages:4096 in
    Test.make ~name:"mem.buddy-alloc-free"
      (Staged.stage (fun () ->
           match Buddy.alloc b ~pages:4 with
           | Some addr -> Buddy.free b ~addr ~pages:4
           | None -> failwith "exhausted"))

  let tests =
    Test.make_grouped ~name:"lastcpu"
      [
        bench_codec;
        bench_token;
        bench_store_get;
        bench_bus_route;
        bench_wal;
        bench_tlb_hit;
        bench_walk;
        bench_vq;
        bench_fault;
        bench_framed;
        bench_lint;
        bench_buddy;
      ]

  let run () =
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> Printf.sprintf "%.1f" e
          | Some [] | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        rows := (name, est, r2) :: !rows)
      results;
    print_newline ();
    print_endline "MICRO — bechamel micro-benchmarks (real ns/op on this host)";
    Printf.printf "  %-28s %14s %10s\n" "benchmark" "ns/op" "r^2";
    List.iter
      (fun (name, est, r2) -> Printf.printf "  %-28s %14s %10s\n" name est r2)
      (List.sort compare !rows)
end

(* --- core macro-benchmarks ------------------------------------------------------ *)

(* The perf-regression baseline for the simulation hot path. Unlike the
   bechamel micro suite (ns/op of leaf primitives), these measure the
   engine loop itself: how fast events move schedule->pop->run, how many
   minor words each event costs, and what tracing adds back. Results go
   to stdout and BENCH_core.json. *)
module Core_bench = struct
  module Types = Lastcpu_proto.Types
  module Message = Lastcpu_proto.Message
  module Codec = Lastcpu_proto.Codec
  module Token = Lastcpu_proto.Token
  module Engine = Lastcpu_sim.Engine
  module Sysbus = Lastcpu_bus.Sysbus
  module Iommu = Lastcpu_iommu.Iommu
  module System = Lastcpu_core.System

  (* Containment micro-costs pinned in the core baseline: capability
     verification (every privileged bus message pays it, and the epoch
     check rides the same MAC) and rejection of a malformed frame (the
     hardened decode path the protocol fuzzer hammers — it must be cheap
     enough that a rogue device cannot turn garbage frames into a
     CPU-side amplification attack on the bus). *)
  let token_verify_ns () =
    let key = 0xFEEDL in
    let token =
      Token.mint ~key ~issuer:1 ~subject:2 ~pasid:3 ~resource:"dram"
        ~base:0x1000L ~length:65536L ~perm:Types.perm_rw ~nonce:9L ()
    in
    let iters = 2_000_000 in
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (Token.verify ~key token)
    done;
    Float.max (Sys.time () -. t0) 1e-9 /. float_of_int iters *. 1e9

  let decode_malformed_ns () =
    let good =
      Codec.encode_framed
        (Message.make ~src:1 ~dst:Types.Bus ~corr:7 Message.Heartbeat)
    in
    let hostile =
      [|
        "\xde\xad\xbe\xef";
        String.sub good 0 (String.length good - 3);
        String.map (fun c -> Char.chr (Char.code c lxor 0x41)) good;
      |]
    in
    let iters = 1_000_000 in
    let t0 = Sys.time () in
    for i = 1 to iters do
      match Codec.decode_framed_result hostile.(i mod 3) with
      | Error _ -> ()
      | Ok _ -> failwith "malformed frame decoded"
    done;
    Float.max (Sys.time () -. t0) 1e-9 /. float_of_int iters *. 1e9

  (* Raw schedule->pop throughput: a fixed-width wave of self-rescheduling
     events drains through the engine with trace and sanitize off. The
     ping closure is allocated once, so minor words/event is the cost of
     the queue machinery alone. *)
  let engine_hot_loop ~events =
    let engine = Engine.create ~trace_capacity:0 ~queue_hint:64 () in
    let remaining = ref events in
    let rec ping () =
      if !remaining > 0 then begin
        decr remaining;
        Engine.schedule engine ~delay:1L ping
      end
    in
    for _ = 1 to 8 do
      Engine.schedule engine ~delay:1L ping
    done;
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    Engine.run engine;
    let dt = Float.max (Sys.time () -. t0) 1e-9 in
    let dw = Gc.minor_words () -. w0 in
    let n = Engine.events_executed engine in
    (float_of_int n /. dt, dw /. float_of_int n)

  (* One message through the bus (hop + station + hop), tracing on vs off.
     With trace and sanitize off the routing path formats no frame
     descriptions and appends no trace events, so the words/msg gap
     between the two rows is the formatting the lazy-label refactor
     removed from the hot path. *)
  let bus_route ~trace ~msgs =
    let engine =
      if trace then Engine.create ~queue_hint:16 ()
      else Engine.create ~trace_capacity:0 ~queue_hint:16 ()
    in
    let bus = Sysbus.create engine in
    let iommu = Iommu.create () in
    let a = Sysbus.attach bus ~name:"a" ~iommu ~handler:(fun _ -> ()) in
    let b = Sysbus.attach bus ~name:"b" ~iommu ~handler:(fun _ -> ()) in
    Sysbus.send bus
      (Message.make ~src:a ~dst:Types.Bus ~corr:0
         (Message.Device_alive { services = [] }));
    Sysbus.send bus
      (Message.make ~src:b ~dst:Types.Bus ~corr:0
         (Message.Device_alive { services = [] }));
    Engine.run engine;
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    for _ = 1 to msgs do
      Sysbus.send bus
        (Message.make ~src:a ~dst:(Types.Device b) ~corr:0 Message.Heartbeat);
      Engine.run engine
    done;
    let dt = Float.max (Sys.time () -. t0) 1e-9 in
    let dw = Gc.minor_words () -. w0 in
    (dw /. float_of_int msgs, dt /. float_of_int msgs *. 1e9)

  (* End-to-end: one full T1 run (boot, workload, both designs), reported
     as simulated events per second of harness CPU time. *)
  let t1_end_to_end () =
    let t0 = Sys.time () in
    let system = Experiments.soaked_system ~exp:"t1" ~seed:42L in
    let dt = Float.max (Sys.time () -. t0) 1e-9 in
    let n = Engine.events_executed (System.engine system) in
    (n, float_of_int n /. dt)

  (* Checkpoint/restore round-trip over the booted KVS machine: how long a
     quiescent whole-machine snapshot takes to collect + atomically write,
     and how long the overlay onto a freshly rebuilt topology takes to
     apply (rebuild excluded — the restore path is the new code, the
     rebuild is the ordinary deterministic bring-up). Restore correctness
     is asserted, not assumed: a digest mismatch fails the bench. *)
  let snapshot_roundtrip () =
    let module Scenario = Lastcpu_core.Scenario_kvs in
    let module Checkpoint = Lastcpu_core.Checkpoint in
    let module Metrics = Lastcpu_sim.Metrics in
    let module Kv_app = Lastcpu_kv.Kv_app in
    let module Kv_proto = Lastcpu_kv.Kv_proto in
    let build () =
      match Scenario.run ~smoke_ops:0 () with
      | Error e -> failwith ("snapshot bench: scenario failed: " ^ e)
      | Ok outcome -> outcome
    in
    let outcome = build () in
    let system = outcome.Scenario.system in
    for i = 1 to 50 do
      Kv_app.local_op outcome.Scenario.app
        (Kv_proto.Put (Printf.sprintf "snap-%03d" i, Printf.sprintf "v-%d" i))
        (fun _ -> ())
    done;
    System.run_until_quiescent system;
    let digest = Metrics.digest (Engine.metrics (System.engine system)) in
    let path = Filename.temp_file "lastcpu-bench" ".snap" in
    let tag = "bench-snapshot" in
    let saves = 20 in
    let t0 = Sys.time () in
    for _ = 1 to saves do
      Checkpoint.save ~path ~tag (Checkpoint.Single (System.engine system))
    done;
    let save_us = Float.max (Sys.time () -. t0) 1e-9
                  /. float_of_int saves *. 1e6 in
    let bytes =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      close_in ic;
      n
    in
    let restores = 5 in
    let elapsed = ref 0. in
    for _ = 1 to restores do
      let fresh = (build ()).Scenario.system in
      let t0 = Sys.time () in
      (match
         Checkpoint.restore ~path ~tag (Checkpoint.Single (System.engine fresh))
       with
      | Ok _ -> ()
      | Error e -> failwith ("snapshot bench: restore failed: " ^ e));
      elapsed := !elapsed +. (Sys.time () -. t0);
      let got = Metrics.digest (Engine.metrics (System.engine fresh)) in
      if got <> digest then begin
        Printf.eprintf
          "FATAL: snapshot restore digest 0x%016Lx <> saved 0x%016Lx — the \
           checkpoint round-trip is lossy\n"
          got digest;
        exit 1
      end
    done;
    let restore_us = Float.max !elapsed 1e-9 /. float_of_int restores *. 1e6 in
    Sys.remove path;
    (try Sys.remove (path ^ ".1") with Sys_error _ -> ());
    (save_us, restore_us, bytes)

  (* Temporal decoupling: the T15 four-cluster soak with its shard windows
     executed on [shards] lanes (Domains). Only the coupled phase is timed
     (t15_run_seconds) — per-cluster bring-up is sequential in every
     configuration. The digest is the determinism contract: it must be
     bit-identical whatever the lane count, and a mismatch fails the bench
     outright. The speedup row is a plain measurement: lanes can only pay
     off with cores to run on, so on a single-core host expect <= 1x (the
     rendezvous overhead), and on an n-core host up to ~min(n, 4)x. *)
  let t15_end_to_end ~shards =
    let r = Experiments.t15_soak ~shards ~clock:Sys.time ~seed:42L () in
    let dt = Float.max r.Experiments.t15_run_seconds 1e-9 in
    ( r.Experiments.t15_events,
      float_of_int r.Experiments.t15_events /. dt,
      r.Experiments.t15_digest )

  (* Data plane: raw DRAM byte throughput. Every payload byte a device
     moves (virtqueue descriptors, NAND pages, net frames) crosses
     Physmem, so this row bounds everything below it. *)
  let physmem_read_mb_s () =
    let module Physmem = Lastcpu_mem.Physmem in
    let mem = Physmem.create () in
    let chunk = 65536 in
    Physmem.write_bytes mem 0x10_0000L (String.make chunk 'x');
    let iters = 4_000 in
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (Physmem.read_bytes mem 0x10_0000L chunk)
    done;
    let dt = Float.max (Sys.time () -. t0) 1e-9 in
    float_of_int iters *. float_of_int chunk /. dt /. 1e6

  (* Zero-copy codec: encode a representative control message straight
     into a Physmem view ([encode_into]) vs through the heap Writer
     ([encode]). The delta is the string round-trip the Emit functor
     removed from the data plane. *)
  let codec_encode_into_ns () =
    let module Physmem = Lastcpu_mem.Physmem in
    let module Token = Lastcpu_proto.Token in
    let mem = Physmem.create () in
    let token =
      Token.mint ~key:0xFEEDL ~issuer:1 ~subject:2 ~pasid:3 ~resource:"dram"
        ~base:0x1000L ~length:65536L ~perm:Types.perm_rw ~nonce:9L ()
    in
    let msg =
      Message.make ~src:1 ~dst:Types.Bus ~corr:42
        (Message.Map_directive
           {
             device = 2;
             pasid = 3;
             va = 0x4000_0000L;
             pa = 0x1000_0000L;
             bytes = 65536L;
             perm = Types.perm_rw;
             auth = token;
           })
    in
    let size = Codec.encoded_size msg in
    let v = Physmem.view mem 0x20_0000L size in
    let iters = 1_000_000 in
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (Codec.encode_into msg v ~pos:0)
    done;
    Float.max (Sys.time () -. t0) 1e-9 /. float_of_int iters *. 1e9

  (* Batched virtqueue service: a driver posts [batch] two-segment chains,
     the device drains them in one event. Chains per host-second over the
     full ring protocol (descriptor walk, per-entry used publication). *)
  let vq_drain_chains_s () =
    let module Physmem = Lastcpu_mem.Physmem in
    let module Vq = Lastcpu_virtio.Virtqueue in
    let module Dma = Lastcpu_virtio.Dma in
    let mem = Physmem.create () in
    let iommu = Iommu.create () in
    (match
       Iommu.map iommu ~pasid:1 ~va:0x4000_0000L ~pa:0x10_0000L
         ~bytes:(Int64.of_int (256 * 4096))
         ~perm:Types.perm_rw
     with
    | Ok () -> ()
    | Error e -> failwith ("vq bench: map failed: " ^ e));
    let dma = Dma.create ~iommu ~pasid:1 ~mem in
    let base = 0x4000_0000L in
    let size = 256 in
    let driver = Vq.Driver.create ~dma ~base ~size in
    let device = Vq.Device.create ~dma ~base ~size in
    (* Buffer slots live past the rings, inside the same mapping. *)
    let slots_base = Int64.add base (Int64.of_int 0x8_0000) in
    let batch = 64 in
    let rounds = 2_000 in
    let t0 = Sys.time () in
    for _ = 1 to rounds do
      for i = 0 to batch - 1 do
        let va = Int64.add slots_base (Int64.of_int (i * 4096)) in
        match
          Vq.Driver.add driver
            [
              { Vq.va; len = 512; writable = false };
              { Vq.va = Int64.add va 2048L; len = 512; writable = true };
            ]
        with
        | Ok _ -> ()
        | Error e -> failwith ("vq bench: add failed: " ^ e)
      done;
      let drained = Vq.Device.drain device ~f:(fun _ -> 512) in
      if drained <> batch then failwith "vq bench: drain count mismatch";
      let rec recycle () =
        match Vq.Driver.poll_used driver with
        | Some _ -> recycle ()
        | None -> ()
      in
      recycle ()
    done;
    let dt = Float.max (Sys.time () -. t0) 1e-9 in
    float_of_int (batch * rounds) /. dt

  (* Data plane, end to end: a closed-loop remote client pushes Put/Get
     pairs through the NIC fast path into the SSD-backed store (WAL
     append -> virtqueue -> NAND) and reads them back. Reported as value
     payload bytes per host-second. The workload is run twice on fresh
     systems and the metrics digests must match — the zero-copy fast
     path is only allowed to change host time, never modeled behaviour. *)
  let kv_value_bytes = 4096
  let kv_pairs = 150

  let kv_put_get_once () =
    let module Scenario = Lastcpu_core.Scenario_kvs in
    let module Netsim = Lastcpu_net.Netsim in
    let module Kv_proto = Lastcpu_kv.Kv_proto in
    let module Smart_nic = Lastcpu_devices.Smart_nic in
    let module Metrics = Lastcpu_sim.Metrics in
    match Scenario.run ~smoke_ops:0 () with
    | Error e -> failwith ("kv bench: scenario failed: " ^ e)
    | Ok outcome ->
      let system = outcome.Scenario.system in
      let app_addr = Smart_nic.endpoint_address (System.nic system 0) in
      let ep = Netsim.endpoint (System.net system) ~name:"bench-client" in
      let value = String.make kv_value_bytes 'z' in
      let ops = kv_pairs * 2 in
      let sent = ref 0 and completed = ref 0 in
      let send_next () =
        if !sent < ops then begin
          let corr = !sent in
          incr sent;
          let key = Printf.sprintf "bench-%04d" (corr / 2) in
          let op =
            if corr land 1 = 0 then Kv_proto.Put (key, value)
            else Kv_proto.Get key
          in
          Netsim.send ep ~dst:app_addr
            (Kv_proto.encode_request { Kv_proto.corr; op })
        end
      in
      Netsim.set_receiver ep (fun ~src:_ frame ->
          match Kv_proto.decode_response frame with
          | Error _ -> ()
          | Ok _ ->
            incr completed;
            send_next ());
      let t0 = Sys.time () in
      send_next ();
      System.run_until_quiescent system;
      let dt = Float.max (Sys.time () -. t0) 1e-9 in
      if !completed <> ops then
        failwith
          (Printf.sprintf "kv bench: %d/%d ops completed" !completed ops);
      let digest =
        Metrics.digest (Lastcpu_sim.Engine.metrics (System.engine system))
      in
      (float_of_int (ops * kv_value_bytes) /. dt, digest)

  let kv_put_get () =
    let rate1, digest1 = kv_put_get_once () in
    let rate2, digest2 = kv_put_get_once () in
    if digest1 <> digest2 then begin
      Printf.eprintf
        "FATAL: kv.put-get digest diverged across identical runs: \
         0x%016Lx vs 0x%016Lx — the KV data plane is nondeterministic\n"
        digest1 digest2;
      exit 1
    end;
    (Float.max rate1 rate2, digest1)

  let json_path = "BENCH_core.json"

  (* tooling: one full lastcpu-audit pass over every lib/ .cmt — the wall
     time `dune build @audit` adds on top of @check itself. Reported as
     (-1, 0) when no prior build left .cmt files to read (the row is then
     absent from the printed table but still present in the JSON, so the
     schema never shifts). *)
  let audit_scan_lib () =
    let dir = Filename.concat (Filename.concat "_build" "default") "lib" in
    let cmts = Audit_core.cmt_files_under dir in
    if cmts = [] then (-1.0, 0)
    else begin
      let config = Lint_core.parse_rules "D007,D008 scope=lib\n" in
      let t0 = Sys.time () in
      let inventories = List.filter_map Audit_core.inventory_of_cmt cmts in
      let findings = Audit_core.findings ~config inventories in
      ignore (List.length findings);
      ((Sys.time () -. t0) *. 1e3, List.length inventories)
    end

  let run () =
    let events = 2_000_000 and msgs = 100_000 in
    let sched_rate, sched_words = engine_hot_loop ~events in
    let off_words, off_ns = bus_route ~trace:false ~msgs in
    let on_words, on_ns = bus_route ~trace:true ~msgs in
    let t1_events, t1_rate = t1_end_to_end () in
    let verify_ns = token_verify_ns () in
    let malformed_ns = decode_malformed_ns () in
    let snap_save_us, snap_restore_us, snap_bytes = snapshot_roundtrip () in
    let t15_events, t15_rate1, t15_digest1 = t15_end_to_end ~shards:1 in
    let t15_events4, t15_rate4, t15_digest4 = t15_end_to_end ~shards:4 in
    if t15_digest1 <> t15_digest4 || t15_events <> t15_events4 then begin
      Printf.eprintf
        "FATAL: t15 digest diverged across lane counts: shards=1 \
         0x%016Lx/%d events, shards=4 0x%016Lx/%d events — the temporal \
         decoupling determinism contract is broken\n"
        t15_digest1 t15_events t15_digest4 t15_events4;
      exit 1
    end;
    let t15_speedup = t15_rate4 /. t15_rate1 in
    let physmem_mb_s = physmem_read_mb_s () in
    let encode_into_ns = codec_encode_into_ns () in
    let vq_chains_s = vq_drain_chains_s () in
    let kv_rate, kv_digest = kv_put_get () in
    let audit_ms, audit_units = audit_scan_lib () in
    let host_cores = Domain.recommended_domain_count () in
    print_newline ();
    print_endline "CORE — engine macro-benchmarks (real time on this host)";
    Printf.printf "  %-28s %12.2e events/s  %6.1f minor words/event\n"
      "schedule->pop drain" sched_rate sched_words;
    Printf.printf "  %-28s %12.1f ns/msg    %6.1f minor words/msg\n"
      "bus route (trace off)" off_ns off_words;
    Printf.printf "  %-28s %12.1f ns/msg    %6.1f minor words/msg\n"
      "bus route (trace on)" on_ns on_words;
    Printf.printf "  %-28s %12.2e events/s  (%d events)\n" "t1 end-to-end"
      t1_rate t1_events;
    Printf.printf "  %-28s %12.1f ns/op\n" "token.verify" verify_ns;
    Printf.printf "  %-28s %12.1f ns/op\n" "codec.decode-malformed"
      malformed_ns;
    Printf.printf "  %-28s %12.1f us/op     (%d snapshot bytes)\n"
      "snapshot.save" snap_save_us snap_bytes;
    Printf.printf "  %-28s %12.1f us/op     (overlay only)\n"
      "snapshot.restore" snap_restore_us;
    Printf.printf "  %-28s %12.2e events/s  (digest 0x%016Lx)\n"
      "t15 soak (--shards 1)" t15_rate1 t15_digest1;
    Printf.printf "  %-28s %12.2e events/s  (digest 0x%016Lx)\n"
      "t15 soak (--shards 4)" t15_rate4 t15_digest4;
    Printf.printf "  %-28s %12.2fx          (%d host cores)\n"
      "t15 lane speedup 4 vs 1" t15_speedup host_cores;
    Printf.printf "  %-28s %12.1f MB/s\n" "physmem.read-bytes" physmem_mb_s;
    Printf.printf "  %-28s %12.1f ns/op\n" "codec.encode-into" encode_into_ns;
    Printf.printf "  %-28s %12.2e chains/s\n" "vq.drain" vq_chains_s;
    Printf.printf "  %-28s %12.2e bytes/s   (digest 0x%016Lx)\n" "kv.put-get"
      kv_rate kv_digest;
    if audit_units > 0 then
      Printf.printf "  %-28s %12.1f ms/scan   (%d units)\n" "audit.scan-lib"
        audit_ms audit_units;
    if host_cores < 2 then
      print_endline
        "  note: single-core host — lanes cannot run concurrently, so the \
         speedup row\n\
        \  measures rendezvous overhead only; digests above still prove \
         lane invariance";
    let json =
      Printf.sprintf
        "{\"schedule_pop_events_per_sec\": %.0f, \
         \"schedule_pop_minor_words_per_event\": %.2f, \
         \"bus_route_trace_off_ns_per_msg\": %.1f, \
         \"bus_route_trace_off_minor_words_per_msg\": %.2f, \
         \"bus_route_trace_on_ns_per_msg\": %.1f, \
         \"bus_route_trace_on_minor_words_per_msg\": %.2f, \
         \"t1_events_executed\": %d, \"t1_events_per_sec\": %.0f, \
         \"token.verify_ns_per_op\": %.1f, \
         \"codec.decode-malformed_ns_per_op\": %.1f, \
         \"snapshot.save_us_per_op\": %.1f, \
         \"snapshot.restore_us_per_op\": %.1f, \
         \"snapshot.bytes\": %d, \
         \"t15_events_executed\": %d, \
         \"t15_shards1_events_per_sec\": %.0f, \
         \"t15_shards4_events_per_sec\": %.0f, \
         \"t15_speedup\": %.2f, \"t15_digest\": \"0x%016Lx\", \
         \"t15_host_cores\": %d, \
         \"physmem.read-bytes_mb_per_sec\": %.1f, \
         \"codec.encode-into_ns_per_op\": %.1f, \
         \"vq.drain_chains_per_sec\": %.0f, \
         \"kv.put-get_bytes_per_sec\": %.0f, \
         \"kv.put-get_digest\": \"0x%016Lx\", \
         \"audit.scan-lib_ms\": %.1f, \"audit.units\": %d}"
        sched_rate sched_words off_ns off_words on_ns on_words t1_events
        t1_rate verify_ns malformed_ns snap_save_us snap_restore_us snap_bytes
        t15_events t15_rate1
        t15_rate4 t15_speedup t15_digest1 host_cores physmem_mb_s
        encode_into_ns vq_chains_s kv_rate kv_digest audit_ms audit_units
    in
    let oc = open_out json_path in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "  (written to %s)\n%!" json_path
end

(* --- metrics snapshot ---------------------------------------------------------- *)

(* One machine-readable telemetry dump: boot the KVS scenario, run a short
   workload, and print the engine registry as JSON (one line, parseable). *)
let metrics_snapshot () =
  let module System = Lastcpu_core.System in
  let module Scenario = Lastcpu_core.Scenario_kvs in
  let module Engine = Lastcpu_sim.Engine in
  let module Metrics = Lastcpu_sim.Metrics in
  let module Kv_app = Lastcpu_kv.Kv_app in
  let module Kv_proto = Lastcpu_kv.Kv_proto in
  match Scenario.run () with
  | Error e -> Printf.eprintf "metrics: scenario failed: %s\n" e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let app = outcome.Scenario.app in
    for i = 1 to 25 do
      let key = Printf.sprintf "bench-%04d" i in
      Kv_app.local_op app (Kv_proto.Put (key, "value-" ^ key)) (fun _ -> ());
      Kv_app.local_op app (Kv_proto.Get key) (fun _ -> ())
    done;
    System.run_until_idle system;
    print_endline (Metrics.to_json (Engine.metrics (System.engine system)))

(* --- driver ------------------------------------------------------------------- *)

let all_ids =
  [ "f1"; "f2"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "t8"; "t9"; "t10";
    "t11"; "t12"; "t13"; "t14"; "t15" ]

(* A typo'd id must fail the invocation (CI smoke steps pass ids by hand;
   a misspelling silently running zero experiments would look green). *)
let failures = ref 0

(* Rendered off the main domain when --jobs > 1: each experiment owns its
   engine, so tables are independent tasks. Rendering to a string in the
   worker and printing in submission order keeps the output layout
   identical to a sequential run. *)
let render_experiment id () =
  match Experiments.by_id id with
  | None -> Error id
  | Some f ->
    let t0 = Sys.time () in
    let table = Format.asprintf "%a" Experiments.print_table (f ()) in
    Ok (table, Sys.time () -. t0)

let print_experiment = function
  | Error id ->
    Printf.eprintf "unknown experiment %S\n" id;
    incr failures
  | Ok (table, dt) ->
    print_string table;
    Printf.printf "  (harness cpu time: %.1fs)\n%!" dt

let () =
  let rec split_jobs jobs acc = function
    | [] -> (jobs, List.rev acc)
    | ("--jobs" | "-j") :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> split_jobs j acc rest
      | Some _ | None ->
        Printf.eprintf "bad --jobs value %S\n" n;
        exit 2)
    | [ ("--jobs" | "-j") ] ->
      prerr_endline "--jobs needs a value";
      exit 2
    | a :: rest -> split_jobs jobs (a :: acc) rest
  in
  let raw =
    match Array.to_list Sys.argv with [] | [ _ ] -> [] | _ :: rest -> rest
  in
  let jobs, args = split_jobs 1 [] raw in
  let args = if args = [] && raw = [] then all_ids @ [ "micro" ] else args in
  let args =
    List.concat_map (fun a -> if a = "all" then all_ids else [ a ]) args
  in
  let special = [ "micro"; "metrics"; "core" ] in
  let exp_ids = List.filter (fun a -> not (List.mem a special)) args in
  let tables =
    ref (Parallel.run_jobs ~jobs (List.map render_experiment exp_ids))
  in
  let next_table () =
    match !tables with
    | [] -> assert false
    | t :: rest ->
      tables := rest;
      t
  in
  print_endline "lastcpu experiment harness — see EXPERIMENTS.md for the index";
  List.iter
    (fun id ->
      if id = "micro" then Micro.run ()
      else if id = "metrics" then metrics_snapshot ()
      else if id = "core" then Core_bench.run ()
      else print_experiment (next_table ()))
    args;
  if !failures > 0 then exit 1
