(* Tests for the self-managing device framework + memory controller +
   auth/console devices: lifecycle, discovery, service multiplexing,
   correlated requests, alloc/grant flows. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Engine = Lastcpu_sim.Engine
module Physmem = Lastcpu_mem.Physmem
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Memctl = Lastcpu_devices.Memctl
module Auth_dev = Lastcpu_devices.Auth_dev
module Console_dev = Lastcpu_devices.Console_dev
module Dma = Lastcpu_virtio.Dma
module Iommu = Lastcpu_iommu.Iommu

let rig () =
  let engine = Engine.create () in
  let bus = Sysbus.create engine in
  let mem = Physmem.create () in
  (engine, bus, mem)

let echo_service dev name =
  {
    Device.desc = { Message.kind = Types.Kv_service; name; version = 1 };
    can_serve = (fun ~query -> query = "" || query = name);
    on_open =
      (fun ~client:_ ~pasid:_ ~auth:_ ~params:_ ->
        Ok { Device.connection = Device.fresh_connection dev; shm_bytes = 128L });
    on_close = (fun ~connection:_ -> ());
  }

let test_start_announces () =
  let engine, bus, mem = rig () in
  let dev = Device.create bus ~mem ~name:"d0" () in
  Device.add_service dev (echo_service dev "d0.svc");
  Alcotest.(check bool) "not live" false (Sysbus.is_live bus (Device.id dev));
  Device.start dev;
  Engine.run engine;
  Alcotest.(check bool) "live" true (Sysbus.is_live bus (Device.id dev));
  Alcotest.(check int) "service announced" 1
    (List.length (Sysbus.services_of bus (Device.id dev)))

let test_discover_finds_service () =
  let engine, bus, mem = rig () in
  let provider = Device.create bus ~mem ~name:"provider" () in
  Device.add_service provider (echo_service provider "provider.svc");
  Device.start provider;
  let seeker = Device.create bus ~mem ~name:"seeker" () in
  Device.start seeker;
  Engine.run engine;
  let found = ref None in
  Device.discover seeker ~kind:Types.Kv_service ~query:"" (fun r -> found := Some r);
  Engine.run engine;
  match !found with
  | Some (Some (id, svc)) ->
    Alcotest.(check int) "provider id" (Device.id provider) id;
    Alcotest.(check string) "service name" "provider.svc" svc.Message.name
  | Some None -> Alcotest.fail "discovery returned none"
  | None -> Alcotest.fail "discovery never completed"

let test_discover_timeout_when_absent () =
  let engine, bus, mem = rig () in
  let seeker = Device.create bus ~mem ~name:"seeker" () in
  Device.start seeker;
  Engine.run engine;
  let found = ref None in
  Device.discover seeker ~kind:Types.File_service ~query:"/nope" (fun r ->
      found := Some r);
  Engine.run engine;
  Alcotest.(check bool) "none after timeout" true (!found = Some None)

let test_open_close_connection_table () =
  let engine, bus, mem = rig () in
  let provider = Device.create bus ~mem ~name:"provider" () in
  Device.add_service provider (echo_service provider "p.svc");
  Device.start provider;
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  let opened = ref None in
  Device.open_service client ~provider:(Device.id provider)
    ~service:{ Message.kind = Types.Kv_service; name = "p.svc"; version = 1 }
    ~pasid:4 (fun r -> opened := Some r);
  Engine.run engine;
  (match !opened with
  | Some (Ok { Device.connection; shm_bytes }) ->
    Alcotest.(check int64) "shm" 128L shm_bytes;
    Alcotest.(check int) "one connection" 1 (Device.connection_count provider);
    (match Device.connections provider with
    | [ info ] ->
      Alcotest.(check int) "client id" (Device.id client) info.Device.client;
      Alcotest.(check int) "pasid" 4 info.Device.conn_pasid
    | _ -> Alcotest.fail "connection table wrong");
    Device.close_service client ~provider:(Device.id provider) ~connection;
    Engine.run engine;
    Alcotest.(check int) "closed" 0 (Device.connection_count provider)
  | Some (Error e) -> Alcotest.fail (Types.error_code_to_string e)
  | None -> Alcotest.fail "open never completed")

let test_open_unknown_service_fails () =
  let engine, bus, mem = rig () in
  let provider = Device.create bus ~mem ~name:"provider" () in
  Device.start provider;
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  let opened = ref None in
  Device.open_service client ~provider:(Device.id provider)
    ~service:{ Message.kind = Types.Kv_service; name = "ghost"; version = 1 }
    ~pasid:1 (fun r -> opened := Some r);
  Engine.run engine;
  match !opened with
  | Some (Error Types.E_no_such_service) -> ()
  | _ -> Alcotest.fail "expected no-such-service"

let test_isolation_between_connections () =
  (* Two clients open the same service; each gets a distinct connection id
     (the device multiplexes into isolated instances — paper §2.1). *)
  let engine, bus, mem = rig () in
  let provider = Device.create bus ~mem ~name:"provider" () in
  Device.add_service provider (echo_service provider "p.svc");
  Device.start provider;
  let c1 = Device.create bus ~mem ~name:"c1" () in
  let c2 = Device.create bus ~mem ~name:"c2" () in
  Device.start c1;
  Device.start c2;
  Engine.run engine;
  let conns = ref [] in
  let open_from c =
    Device.open_service c ~provider:(Device.id provider)
      ~service:{ Message.kind = Types.Kv_service; name = "p.svc"; version = 1 }
      ~pasid:(Device.id c) (fun r ->
        match r with
        | Ok { Device.connection; _ } -> conns := connection :: !conns
        | Error _ -> ())
  in
  open_from c1;
  open_from c2;
  Engine.run engine;
  Alcotest.(check int) "both opened" 2 (List.length !conns);
  Alcotest.(check bool) "distinct ids" true
    (List.length (List.sort_uniq compare !conns) = 2)

let test_app_message_request_response () =
  let engine, bus, mem = rig () in
  let server = Device.create bus ~mem ~name:"server" () in
  Device.set_app_handler server (fun msg ->
      match msg.Message.payload with
      | Message.App_message { tag = "ping"; body } ->
        Device.reply server ~to_:msg.Message.src ~corr:msg.Message.corr
          (Message.App_message { tag = "pong"; body })
      | _ -> ());
  Device.start server;
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  let got = ref None in
  Device.request client ~dst:(Types.Device (Device.id server))
    (Message.App_message { tag = "ping"; body = "payload" })
    (fun p -> got := Some p);
  Engine.run engine;
  match !got with
  | Some (Message.App_message { tag = "pong"; body = "payload" }) -> ()
  | _ -> Alcotest.fail "ping/pong failed"

(* --- memctl flows ------------------------------------------------------------- *)

let memctl_rig () =
  let engine, bus, mem = rig () in
  let mc = Memctl.create bus ~mem ~dram_pages:1024 () in
  let dev = Device.create bus ~mem ~name:"app-dev" () in
  Device.start dev;
  Engine.run engine;
  (engine, bus, mem, mc, dev)

let test_alloc_maps_and_returns_token () =
  let engine, _, mem, mc, dev = memctl_rig () in
  let result = ref None in
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:3 ~va:0x4000_0000L
    ~bytes:8192L ~perm:Types.perm_rw (fun r -> result := Some r);
  Engine.run engine;
  (match !result with
  | Some (Ok token) ->
    Alcotest.(check int) "token subject" (Device.id dev) token.Lastcpu_proto.Token.subject;
    Alcotest.(check int) "token pasid" 3 token.Lastcpu_proto.Token.pasid
  | Some (Error e) -> Alcotest.fail (Types.error_code_to_string e)
  | None -> Alcotest.fail "alloc never completed");
  (* The mapping is live: DMA through it works. *)
  let dma = Device.dma dev ~pasid:3 in
  Dma.write_u64 dma 0x4000_0000L 0x1234L;
  Alcotest.(check int64) "dma works" 0x1234L (Dma.read_u64 dma 0x4000_0000L);
  Alcotest.(check int) "memctl accounting" 2 (Memctl.used_pages mc);
  Alcotest.(check (list (pair int64 int64)))
    "allocations listed"
    [ (0x4000_0000L, 8192L) ]
    (Memctl.allocations_of mc ~pasid:3);
  ignore mem

let test_alloc_rejects_overlap_and_exhaustion () =
  let engine, _, _, mc, dev = memctl_rig () in
  let r1 = ref None and r2 = ref None and r3 = ref None in
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:3 ~va:0x4000_0000L
    ~bytes:4096L ~perm:Types.perm_rw (fun r -> r1 := Some r);
  Engine.run engine;
  (* Same va again: rejected. *)
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:3 ~va:0x4000_0000L
    ~bytes:4096L ~perm:Types.perm_rw (fun r -> r2 := Some r);
  Engine.run engine;
  (* Way beyond the pool: rejected. *)
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:3 ~va:0x5000_0000L
    ~bytes:(Int64.mul 4096L 10_000L) ~perm:Types.perm_rw (fun r -> r3 := Some r);
  Engine.run engine;
  (match !r1 with Some (Ok _) -> () | _ -> Alcotest.fail "first alloc failed");
  (match !r2 with
  | Some (Error Types.E_exists) -> ()
  | _ -> Alcotest.fail "overlap accepted");
  match !r3 with
  | Some (Error Types.E_no_memory) -> ()
  | _ -> Alcotest.fail "exhaustion not detected"

let test_free_unmaps_and_releases () =
  let engine, _, _, mc, dev = memctl_rig () in
  let token = ref None in
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:3 ~va:0x4000_0000L
    ~bytes:4096L ~perm:Types.perm_rw (fun r ->
      token := Result.to_option r);
  Engine.run engine;
  Alcotest.(check bool) "allocated" true (!token <> None);
  let freed = ref None in
  Device.free dev ~memctl:(Memctl.id mc) ~pasid:3 ~va:0x4000_0000L ~bytes:4096L
    (fun r -> freed := Some r);
  Engine.run engine;
  (match !freed with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "free failed");
  Alcotest.(check int) "pool restored" 0 (Memctl.used_pages mc);
  (* DMA now faults: the bus revoked the translation. *)
  let dma = Device.dma dev ~pasid:3 in
  match Dma.read_u8 dma 0x4000_0000L with
  | _ -> Alcotest.fail "mapping survived free"
  | exception Dma.Dma_fault _ -> ()

let test_grant_shares_with_other_device () =
  let engine, _, _, mc, dev = memctl_rig () in
  let peer = Device.create (Device.bus dev) ~mem:(Physmem.create ()) ~name:"x" () in
  ignore peer;
  (* peer shares the same physical memory in a real system; use the same
     Physmem to observe shared data. *)
  let engine2 = engine in
  ignore engine2;
  let token = ref None in
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:6 ~va:0x4100_0000L
    ~bytes:4096L ~perm:Types.perm_rw (fun r -> token := Result.to_option r);
  Engine.run engine;
  match !token with
  | None -> Alcotest.fail "alloc failed"
  | Some tok ->
    let granted = ref None in
    Device.grant dev ~to_device:(Memctl.id mc) ~pasid:6 ~va:0x4100_0000L
      ~bytes:4096L ~perm:Types.perm_r ~auth:tok (fun r -> granted := Some r);
    Engine.run engine;
    (match !granted with
    | Some (Ok ()) -> ()
    | Some (Error e) -> Alcotest.fail (Types.error_code_to_string e)
    | None -> Alcotest.fail "grant never completed")

let test_quota_enforced () =
  let engine, bus, mem = rig () in
  let mc = Memctl.create bus ~mem ~dram_pages:1024 ~quota_pages:4 () in
  let dev = Device.create bus ~mem ~name:"greedy" () in
  Device.start dev;
  Engine.run engine;
  let r1 = ref None and r2 = ref None and r3 = ref None in
  (* 3 pages: fine. *)
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:1 ~va:0x4000_0000L
    ~bytes:12288L ~perm:Types.perm_rw (fun r -> r1 := Some r);
  Engine.run engine;
  (* 2 more pages: over the 4-page quota. *)
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:1 ~va:0x4100_0000L
    ~bytes:8192L ~perm:Types.perm_rw (fun r -> r2 := Some r);
  Engine.run engine;
  (* A different pasid has its own budget. *)
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:2 ~va:0x4200_0000L
    ~bytes:8192L ~perm:Types.perm_rw (fun r -> r3 := Some r);
  Engine.run engine;
  (match !r1 with Some (Ok _) -> () | _ -> Alcotest.fail "within quota failed");
  (match !r2 with
  | Some (Error Types.E_no_memory) -> ()
  | _ -> Alcotest.fail "quota not enforced");
  (match !r3 with Some (Ok _) -> () | _ -> Alcotest.fail "other pasid blocked");
  Alcotest.(check int) "pasid1 charged" 3 (Memctl.pages_of mc ~pasid:1);
  (* Freeing refunds the quota. *)
  let freed = ref false in
  Device.free dev ~memctl:(Memctl.id mc) ~pasid:1 ~va:0x4000_0000L
    ~bytes:12288L (fun r -> freed := Result.is_ok r);
  Engine.run engine;
  Alcotest.(check bool) "freed" true !freed;
  Alcotest.(check int) "refunded" 0 (Memctl.pages_of mc ~pasid:1);
  let r4 = ref None in
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:1 ~va:0x4300_0000L
    ~bytes:16384L ~perm:Types.perm_rw (fun r -> r4 := Some r);
  Engine.run engine;
  match !r4 with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "post-refund alloc failed"

(* --- doorbells, heartbeats, faults ----------------------------------------------- *)

let test_doorbell_direct_and_registry () =
  let engine, bus, mem = rig () in
  let a = Device.create bus ~mem ~name:"a" () in
  let b = Device.create bus ~mem ~name:"b" () in
  Device.start a;
  Device.start b;
  Engine.run engine;
  let rang = ref 0 in
  Device.on_doorbell b ~queue:5 (fun () -> incr rang);
  Device.doorbell a ~dst:(Device.id b) ~queue:5;
  Device.doorbell a ~dst:(Device.id b) ~queue:5;
  Engine.run engine;
  Alcotest.(check int) "rang twice" 2 !rang;
  Device.clear_doorbell b ~queue:5;
  Device.doorbell a ~dst:(Device.id b) ~queue:5;
  Engine.run engine;
  Alcotest.(check int) "cleared" 2 !rang

let test_doorbell_via_bus_ablation () =
  let engine, bus, mem = rig () in
  let a = Device.create bus ~mem ~name:"a" () in
  let b = Device.create bus ~mem ~name:"b" () in
  Device.start a;
  Device.start b;
  Engine.run engine;
  Device.route_doorbells_via_bus a true;
  let before = (Sysbus.counters bus).Sysbus.routed in
  let rang = ref false in
  Device.on_doorbell b ~queue:1 (fun () -> rang := true);
  Device.doorbell a ~dst:(Device.id b) ~queue:1;
  Engine.run engine;
  Alcotest.(check bool) "delivered" true !rang;
  Alcotest.(check bool) "went through the bus" true
    ((Sysbus.counters bus).Sysbus.routed > before)

let test_request_timeout () =
  let engine, bus, mem = rig () in
  let mute = Device.create bus ~mem ~name:"mute" () in
  Device.start mute (* never answers app messages *);
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  let got = ref None in
  Device.request client ~timeout:10_000L
    ~dst:(Types.Device (Device.id mute))
    (Message.App_message { tag = "ping"; body = "" })
    (fun p -> got := Some p);
  Engine.run engine;
  (match !got with
  | Some (Message.Error_msg { code = Types.E_busy; _ }) -> ()
  | _ -> Alcotest.fail "expected timeout error");
  (* A late answer after the timeout must not double-fire. *)
  let count = ref 0 in
  Device.request client ~timeout:5_000L
    ~dst:(Types.Device (Device.id mute))
    (Message.App_message { tag = "ping"; body = "" })
    (fun _ -> incr count);
  Engine.run engine;
  Alcotest.(check int) "fires exactly once" 1 !count

(* --- overload protection ------------------------------------------------------ *)

let test_bounded_queue_nacks_with_retry_after () =
  let engine = Engine.create () in
  let bus =
    Sysbus.create
      ~config:{ Sysbus.default_config with device_queue_capacity = Some 1 }
      engine
  in
  let mem = Physmem.create () in
  let mc = Memctl.create bus ~mem ~dram_pages:1024 () in
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  (* Two back-to-back allocs against a single-slot monitor queue: the
     second lands while the memctl is still processing the first and is
     bounced immediately — E_busy with a parseable retry-after hint
     instead of queueing forever. The first completes normally. *)
  let replies = ref [] in
  for i = 1 to 2 do
    Device.request client ~timeout:100_000L
      ~dst:(Types.Device (Memctl.id mc))
      (Message.Alloc_request
         {
           pasid = 7;
           va = Int64.add 0x4000_0000L (Int64.of_int (i * 65536));
           bytes = 4096L;
           perm = Types.perm_rw;
         })
      (fun p -> replies := p :: !replies)
  done;
  Engine.run engine;
  Alcotest.(check int) "every request answered" 2 (List.length !replies);
  let served, bounced =
    List.partition
      (function Message.Alloc_response { ok = true; _ } -> true | _ -> false)
      !replies
  in
  Alcotest.(check int) "admitted alloc served" 1 (List.length served);
  (match bounced with
  | [ Message.Error_msg { code = Types.E_busy; detail } ] -> (
    match Message.retry_after_of_detail detail with
    | Some ns -> Alcotest.(check bool) "hint positive" true (ns > 0L)
    | None -> Alcotest.fail "busy NACK without retry-after hint")
  | _ -> Alcotest.fail "expected exactly one E_busy NACK");
  Alcotest.(check int) "rejection counted" 1
    (Device.queue_rejections (Memctl.device mc))

let test_circuit_breaker_opens_and_probes () =
  let engine, bus, mem = rig () in
  let blackhole = Device.create bus ~mem ~name:"blackhole" () in
  Device.start blackhole (* never answers app messages *);
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  Device.enable_circuit_breaker client ~threshold:2 ~cooldown_ns:1_000_000L;
  let peer = Device.id blackhole in
  let answered = ref 0 in
  let req () =
    Device.request client ~timeout:10_000L ~dst:(Types.Device peer)
      (Message.App_message { tag = "ping"; body = "" })
      (fun _ -> incr answered)
  in
  req ();
  Engine.run engine;
  Alcotest.(check bool) "one failure: still closed" true
    (Device.breaker_state client ~peer = `Closed);
  req ();
  Engine.run engine;
  Alcotest.(check bool) "opens at threshold" true
    (Device.breaker_state client ~peer = `Open);
  Alcotest.(check int) "open counted" 1 (Device.breaker_opens client);
  (* While open: callers are answered locally, nothing hits the wire. *)
  let sent_before = Device.requests_sent client in
  req ();
  Engine.run engine;
  Alcotest.(check int) "fast fail counted" 1 (Device.breaker_fast_fails client);
  Alcotest.(check int) "no wire traffic while open" sent_before
    (Device.requests_sent client);
  Alcotest.(check int) "every caller answered" 3 !answered;
  (* Past the cooldown the next request is a half-open probe: it goes out,
     the peer is still dead, and the breaker reopens. *)
  Engine.schedule engine ~delay:2_000_000L req;
  Engine.run engine;
  Alcotest.(check int) "probe hit the wire" (sent_before + 1)
    (Device.requests_sent client);
  Alcotest.(check bool) "probe failure reopens" true
    (Device.breaker_state client ~peer = `Open);
  Alcotest.(check int) "reopen counted" 2 (Device.breaker_opens client);
  Alcotest.(check int) "probe answered too" 4 !answered

let test_expired_request_shed () =
  let engine, bus, mem = rig () in
  let server = Device.create bus ~mem ~name:"server" () in
  Device.set_app_handler server (fun msg ->
      match msg.Message.payload with
      | Message.App_message { tag = "ping"; body } ->
        Device.reply server ~to_:msg.Message.src ~corr:msg.Message.corr
          (Message.App_message { tag = "pong"; body })
      | _ -> ());
  Device.start server;
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  (* A deadline already in the past when the message lands: the device
     sheds it instead of doing doomed work; the client's timeout (not a
     reply) ends the request. *)
  let got = ref None in
  Device.request client
    ~deadline_ns:(Engine.now engine)
    ~timeout:50_000L
    ~dst:(Types.Device (Device.id server))
    (Message.App_message { tag = "ping"; body = "" })
    (fun p -> got := Some p);
  Engine.run engine;
  (match !got with
  | Some (Message.Error_msg { code = Types.E_busy; _ }) -> ()
  | _ -> Alcotest.fail "expired request should end in the local timeout");
  Alcotest.(check int) "shed at the first hop" 1 (Sysbus.messages_expired bus);
  (* Without a deadline the same request round-trips. *)
  let got = ref None in
  Device.request client
    ~dst:(Types.Device (Device.id server))
    (Message.App_message { tag = "ping"; body = "x" })
    (fun p -> got := Some p);
  Engine.run engine;
  match !got with
  | Some (Message.App_message { tag = "pong"; _ }) -> ()
  | _ -> Alcotest.fail "deadline-free request should succeed"

let test_fault_handler_invoked () =
  let engine, bus, mem = rig () in
  let dev = Device.create bus ~mem ~name:"faulty" () in
  Device.start dev;
  Engine.run engine;
  let seen = ref [] in
  Device.on_fault dev (fun f -> seen := f :: !seen);
  let dma = Device.dma dev ~pasid:1 in
  (match Dma.read_u8 dma 0xBAD0_0000L with
  | _ -> Alcotest.fail "expected fault"
  | exception Dma.Dma_fault _ -> ());
  Alcotest.(check int) "handler saw it" 1 (List.length !seen);
  Alcotest.(check int) "counter" 1 (Device.fault_count dev)

let test_heartbeats_keep_device_alive () =
  let engine = Engine.create () in
  let bus =
    Sysbus.create
      ~config:
        { Sysbus.default_config with heartbeat_timeout_ns = 200_000L }
      engine
  in
  let mem = Physmem.create () in
  let a = Device.create bus ~mem ~name:"beater" () in
  let b = Device.create bus ~mem ~name:"silent" () in
  Device.start a;
  Device.start b;
  Device.enable_heartbeat a ~period:50_000L;
  Engine.run ~until:1_000_000L engine;
  Alcotest.(check bool) "beater alive" true (Sysbus.is_live bus (Device.id a));
  Alcotest.(check bool) "silent dead" false (Sysbus.is_live bus (Device.id b))

(* --- auth + console devices -------------------------------------------------------- *)

let test_auth_flow () =
  let engine, bus, mem = rig () in
  let auth = Auth_dev.create bus ~mem ~users:[ ("alice", "pw1") ] () in
  let dev = Device.create bus ~mem ~name:"client" () in
  Device.start dev;
  Engine.run engine;
  let ok_session = ref None and bad = ref None in
  Device.request dev ~dst:(Types.Device (Auth_dev.id auth))
    (Message.Auth_request { user = "alice"; credential = "pw1" })
    (fun p -> ok_session := Some p);
  Device.request dev ~dst:(Types.Device (Auth_dev.id auth))
    (Message.Auth_request { user = "alice"; credential = "wrong" })
    (fun p -> bad := Some p);
  Engine.run engine;
  (match !ok_session with
  | Some (Message.Auth_response { ok = true; session = Some token }) ->
    Alcotest.(check bool) "session verifies" true
      (Lastcpu_proto.Token.verify ~key:(Auth_dev.key auth) token);
    Alcotest.(check string) "resource" "session:alice"
      token.Lastcpu_proto.Token.resource
  | _ -> Alcotest.fail "good login failed");
  (match !bad with
  | Some (Message.Auth_response { ok = false; session = None }) -> ()
  | _ -> Alcotest.fail "bad login accepted");
  Alcotest.(check int) "attempts" 2 (Auth_dev.auth_attempts auth);
  Alcotest.(check int) "failures" 1 (Auth_dev.auth_failures auth)

let test_console_log_collection () =
  let engine, bus, mem = rig () in
  let console = Console_dev.create bus ~mem ~capacity:3 () in
  let dev = Device.create bus ~mem ~name:"logger" () in
  Device.start dev;
  Engine.run engine;
  for i = 1 to 5 do
    Device.send dev ~dst:(Types.Device (Console_dev.id console))
      (Message.App_message { tag = "log"; body = Printf.sprintf "line %d" i })
  done;
  Engine.run engine;
  Alcotest.(check int) "received all" 5 (Console_dev.lines_received console);
  Alcotest.(check (list string)) "capacity keeps newest"
    [ "line 3"; "line 4"; "line 5" ]
    (Console_dev.log_lines console);
  (* Remote read. *)
  let got = ref None in
  Device.request dev ~dst:(Types.Device (Console_dev.id console))
    (Message.App_message { tag = "log-read"; body = "2" })
    (fun p -> got := Some p);
  Engine.run engine;
  match !got with
  | Some (Message.App_message { tag = "log-data"; body }) ->
    Alcotest.(check string) "tail" "line 4\nline 5" body
  | _ -> Alcotest.fail "log-read failed"

let () =
  Alcotest.run "device"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "start announces" `Quick test_start_announces;
          Alcotest.test_case "discover" `Quick test_discover_finds_service;
          Alcotest.test_case "discover timeout" `Quick test_discover_timeout_when_absent;
        ] );
      ( "services",
        [
          Alcotest.test_case "open/close" `Quick test_open_close_connection_table;
          Alcotest.test_case "unknown service" `Quick test_open_unknown_service_fails;
          Alcotest.test_case "connection isolation" `Quick test_isolation_between_connections;
          Alcotest.test_case "request/response" `Quick test_app_message_request_response;
        ] );
      ( "memory",
        [
          Alcotest.test_case "alloc+map+token" `Quick test_alloc_maps_and_returns_token;
          Alcotest.test_case "overlap/exhaustion" `Quick test_alloc_rejects_overlap_and_exhaustion;
          Alcotest.test_case "free revokes" `Quick test_free_unmaps_and_releases;
          Alcotest.test_case "grant" `Quick test_grant_shares_with_other_device;
          Alcotest.test_case "quota" `Quick test_quota_enforced;
        ] );
      ( "signals",
        [
          Alcotest.test_case "doorbell registry" `Quick test_doorbell_direct_and_registry;
          Alcotest.test_case "doorbell via bus" `Quick test_doorbell_via_bus_ablation;
          Alcotest.test_case "request timeout" `Quick test_request_timeout;
          Alcotest.test_case "faults" `Quick test_fault_handler_invoked;
          Alcotest.test_case "heartbeats" `Quick test_heartbeats_keep_device_alive;
        ] );
      ( "overload",
        [
          Alcotest.test_case "bounded queue nacks" `Quick
            test_bounded_queue_nacks_with_retry_after;
          Alcotest.test_case "circuit breaker" `Quick
            test_circuit_breaker_opens_and_probes;
          Alcotest.test_case "expired request shed" `Quick
            test_expired_request_shed;
        ] );
      ( "aux devices",
        [
          Alcotest.test_case "auth flow" `Quick test_auth_flow;
          Alcotest.test_case "console logs" `Quick test_console_log_collection;
        ] );
    ]
