(* Tests for the memory substrate: layout arithmetic, buddy allocator,
   simulated physical memory. *)

module Layout = Lastcpu_mem.Layout
module Buddy = Lastcpu_mem.Buddy
module Physmem = Lastcpu_mem.Physmem

(* --- Layout ----------------------------------------------------------- *)

let test_layout_alignment () =
  Alcotest.(check int64) "align_up 0" 0L (Layout.align_up 0L);
  Alcotest.(check int64) "align_up 1" 4096L (Layout.align_up 1L);
  Alcotest.(check int64) "align_up 4096" 4096L (Layout.align_up 4096L);
  Alcotest.(check int64) "align_up 4097" 8192L (Layout.align_up 4097L);
  Alcotest.(check int64) "align_down 4097" 4096L (Layout.align_down 4097L);
  Alcotest.(check bool) "aligned" true (Layout.is_page_aligned 8192L);
  Alcotest.(check bool) "unaligned" false (Layout.is_page_aligned 8193L)

let test_layout_pages () =
  Alcotest.(check int) "0 bytes" 0 (Layout.pages_of_bytes 0L);
  Alcotest.(check int) "1 byte" 1 (Layout.pages_of_bytes 1L);
  Alcotest.(check int) "4096" 1 (Layout.pages_of_bytes 4096L);
  Alcotest.(check int) "4097" 2 (Layout.pages_of_bytes 4097L);
  Alcotest.(check int64) "page of addr" 2L (Layout.page_of_addr 8193L);
  Alcotest.(check int) "offset" 1 (Layout.offset_in_page 8193L)

(* --- Buddy -------------------------------------------------------------- *)

let test_buddy_alloc_free () =
  let b = Buddy.create ~base:0L ~pages:64 in
  Alcotest.(check int) "all free" 64 (Buddy.free_pages b);
  let a1 = Buddy.alloc b ~pages:1 in
  Alcotest.(check bool) "allocated" true (a1 <> None);
  Alcotest.(check int) "one used" 63 (Buddy.free_pages b);
  (match a1 with
  | Some addr -> Buddy.free b ~addr ~pages:1
  | None -> ());
  Alcotest.(check int) "freed" 64 (Buddy.free_pages b);
  Alcotest.(check int) "coalesced back" 64 (Buddy.largest_free_block b)

let test_buddy_rounds_to_power_of_two () =
  let b = Buddy.create ~base:0L ~pages:64 in
  (match Buddy.alloc b ~pages:3 with
  | Some _ -> ()
  | None -> Alcotest.fail "alloc 3 failed");
  (* 3 pages round to 4. *)
  Alcotest.(check int) "used 4" 4 (Buddy.used_pages b)

let test_buddy_exhaustion () =
  let b = Buddy.create ~base:0L ~pages:16 in
  let blocks = List.filter_map (fun _ -> Buddy.alloc b ~pages:4) [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "four blocks" 4 (List.length blocks);
  Alcotest.(check (option int64)) "exhausted" None (Buddy.alloc b ~pages:1);
  List.iter (fun addr -> Buddy.free b ~addr ~pages:4) blocks;
  Alcotest.(check int) "all back" 16 (Buddy.free_pages b)

let test_buddy_distinct_addresses () =
  let b = Buddy.create ~base:0x10000L ~pages:128 in
  let addrs = List.filter_map (fun _ -> Buddy.alloc b ~pages:2) (List.init 32 Fun.id) in
  let sorted = List.sort_uniq compare addrs in
  Alcotest.(check int) "no duplicates" (List.length addrs) (List.length sorted);
  List.iter
    (fun a ->
      Alcotest.(check bool) "within range" true
        (a >= 0x10000L && a < Int64.add 0x10000L (Int64.mul 128L 4096L)))
    addrs

let test_buddy_double_free_rejected () =
  let b = Buddy.create ~base:0L ~pages:8 in
  match Buddy.alloc b ~pages:2 with
  | None -> Alcotest.fail "alloc failed"
  | Some addr ->
    Buddy.free b ~addr ~pages:2;
    Alcotest.check_raises "double free"
      (Invalid_argument "Buddy.free: not allocated (double free?)") (fun () ->
        Buddy.free b ~addr ~pages:2)

let test_buddy_size_mismatch_rejected () =
  let b = Buddy.create ~base:0L ~pages:8 in
  match Buddy.alloc b ~pages:4 with
  | None -> Alcotest.fail "alloc failed"
  | Some addr ->
    Alcotest.check_raises "size mismatch"
      (Invalid_argument "Buddy.free: size mismatch with allocation") (fun () ->
        Buddy.free b ~addr ~pages:1)

let test_buddy_fragmentation_then_coalesce () =
  let b = Buddy.create ~base:0L ~pages:16 in
  let a = List.filter_map (fun _ -> Buddy.alloc b ~pages:1) (List.init 16 Fun.id) in
  Alcotest.(check int) "largest block 0" 0 (Buddy.largest_free_block b);
  (* Free every other page: buddies cannot coalesce. *)
  List.iteri (fun i addr -> if i mod 2 = 0 then Buddy.free b ~addr ~pages:1) a;
  Alcotest.(check int) "fragmented" 1 (Buddy.largest_free_block b);
  List.iteri (fun i addr -> if i mod 2 = 1 then Buddy.free b ~addr ~pages:1) a;
  Alcotest.(check int) "fully coalesced" 16 (Buddy.largest_free_block b)

let buddy_invariant_prop =
  QCheck.Test.make ~name:"buddy invariants hold under random alloc/free" ~count:100
    QCheck.(list (pair (int_bound 4) bool))
    (fun script ->
      let b = Buddy.create ~base:0L ~pages:256 in
      let live = ref [] in
      List.iter
        (fun (order, do_alloc) ->
          if do_alloc || !live = [] then begin
            let pages = 1 lsl order in
            match Buddy.alloc b ~pages with
            | Some addr -> live := (addr, pages) :: !live
            | None -> ()
          end
          else begin
            match !live with
            | (addr, pages) :: rest ->
              Buddy.free b ~addr ~pages;
              live := rest
            | [] -> ()
          end)
        script;
      Buddy.check_invariants b)

(* --- Physmem ------------------------------------------------------------- *)

let test_physmem_rw () =
  let m = Physmem.create ~size:(Int64.mul 16L 4096L) () in
  Physmem.write_u8 m 0L 0x42;
  Alcotest.(check int) "u8" 0x42 (Physmem.read_u8 m 0L);
  Physmem.write_u64 m 100L 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Physmem.read_u64 m 100L);
  Alcotest.(check int) "u64 little-endian low byte" 0x88 (Physmem.read_u8 m 100L)

let test_physmem_zero_fill () =
  let m = Physmem.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Physmem.read_u8 m 12345L);
  Alcotest.(check string) "bytes zero" (String.make 8 '\000')
    (Physmem.read_bytes m 99999L 8)

let test_physmem_cross_page () =
  let m = Physmem.create () in
  let data = String.init 100 (fun i -> Char.chr (i land 0xff)) in
  let addr = Int64.sub 8192L 50L in
  Physmem.write_bytes m addr data;
  Alcotest.(check string) "straddling read" data (Physmem.read_bytes m addr 100);
  Physmem.write_u64 m (Int64.sub 4096L 4L) 0x0102030405060708L;
  Alcotest.(check int64) "straddling u64" 0x0102030405060708L
    (Physmem.read_u64 m (Int64.sub 4096L 4L))

let test_physmem_bounds () =
  let m = Physmem.create ~size:4096L () in
  Alcotest.(check bool) "oob write raises" true
    (match Physmem.write_u8 m 4096L 1 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "oob span raises" true
    (match Physmem.read_bytes m 4090L 10 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_physmem_sparse () =
  let m = Physmem.create ~size:(Int64.shift_left 1L 30) () in
  Physmem.write_u8 m 0L 1;
  Physmem.write_u8 m (Int64.shift_left 1L 29) 1;
  Alcotest.(check int) "only touched frames" 2 (Physmem.touched_frames m)

(* --- Bigarray backing: views, native-int entry points, snapshots -------- *)

module Snapshot = Lastcpu_sim.Snapshot

(* read_byte/write_byte are the int-native aliases of read_u8/write_u8 —
   same store, same bounds discipline. *)
let test_physmem_byte_aliases () =
  let m = Physmem.create ~size:1_000_000L () in
  Physmem.write_byte m 4097 0xAB;
  Alcotest.(check int) "int write, i64 read" 0xAB (Physmem.read_u8 m 4097L);
  Physmem.write_u8 m 4098L 0xCD;
  Alcotest.(check int) "i64 write, int read" 0xCD (Physmem.read_byte m 4098);
  Alcotest.(check int) "unmaterialised frame reads zero" 0
    (Physmem.read_byte m 900_000);
  Alcotest.check_raises "int bounds enforced"
    (Invalid_argument "Physmem: access [0xf4240, +1) out of range") (fun () ->
      ignore (Physmem.read_byte m 1_000_000))

(* A view is a real window onto DRAM: bytes written through it are seen by
   the copy path (including the cached chunk accessor) and vice versa. *)
let test_physmem_view_coherence () =
  let m = Physmem.create ~size:1_000_000L () in
  Physmem.write_bytes m 8192L "before";
  let v = Physmem.view m 8192L 64 in
  Alcotest.(check string) "view sees prior writes" "before"
    (String.init 6 (fun i -> Bigarray.Array1.get v i));
  Bigarray.Array1.set v 0 'B';
  Alcotest.(check string) "copy path sees view writes" "Before"
    (Physmem.read_bytes m 8192L 6);
  Physmem.write_byte m 8193 (Char.code 'E');
  Alcotest.(check char) "view sees byte-path writes" 'E'
    (Bigarray.Array1.get v 1);
  (* Views must not cross the 64 KiB backing-chunk boundary. *)
  Alcotest.check_raises "cross-chunk view rejected"
    (Invalid_argument
       "Physmem.view: [0xffdc, +100) crosses a chunk boundary") (fun () ->
      ignore (Physmem.view m 65_500L 100))

(* Touched frames under a view are save-visible even if only the view ever
   wrote them. *)
let test_physmem_view_then_save () =
  let m = Physmem.create ~size:1_000_000L () in
  let v = Physmem.view m 12_288L 16 in
  Bigarray.Array1.set v 3 'Z';
  let w = Snapshot.W.create () in
  Physmem.save w m;
  let m2 = Physmem.create ~size:1_000_000L () in
  Physmem.restore (Snapshot.R.of_string (Snapshot.W.contents w)) m2;
  Alcotest.(check int) "view write survives the round trip" (Char.code 'Z')
    (Physmem.read_u8 m2 12_291L)

let test_physmem_snapshot_roundtrip () =
  let m = Physmem.create ~size:2_000_000L () in
  Physmem.write_bytes m 0L "frame zero";
  Physmem.write_bytes m 1_048_576L "a megabyte in";
  Physmem.write_u8 m 1_999_999L 0x7E;
  let w = Snapshot.W.create () in
  Physmem.save w m;
  let m2 = Physmem.create ~size:2_000_000L () in
  Physmem.restore (Snapshot.R.of_string (Snapshot.W.contents w)) m2;
  Alcotest.(check int) "frame count preserved" (Physmem.touched_frames m)
    (Physmem.touched_frames m2);
  Alcotest.(check string) "low frame" "frame zero" (Physmem.read_bytes m2 0L 10);
  Alcotest.(check string) "high frame" "a megabyte in"
    (Physmem.read_bytes m2 1_048_576L 13);
  Alcotest.(check int) "last byte" 0x7E (Physmem.read_u8 m2 1_999_999L);
  Alcotest.(check int) "untouched stays zero" 0 (Physmem.read_u8 m2 500_000L);
  (* Restore replaces state: a dirty target ends up identical, and its
     one-entry caches cannot leak stale pre-restore bytes. *)
  let m3 = Physmem.create ~size:2_000_000L () in
  Physmem.write_bytes m3 0L "stale stale";
  ignore (Physmem.read_byte m3 4);
  Physmem.restore (Snapshot.R.of_string (Snapshot.W.contents w)) m3;
  Alcotest.(check string) "restore overwrote dirty target" "frame zero"
    (Physmem.read_bytes m3 0L 10);
  Alcotest.(check int) "cached chunk not stale" (Char.code 'r')
    (Physmem.read_byte m3 1)

(* The snapshot byte format predates the Bigarray backing: a checkpoint
   handcrafted in the old writer's layout (i64 size, then a (i64 page
   number, 4096-byte frame) list) must restore into today's store. *)
let test_physmem_restores_old_format () =
  let page = 4096 in
  let frame = String.init page (fun i -> Char.chr ((i * 7) land 0xff)) in
  let w = Snapshot.W.create () in
  Snapshot.W.i64 w 1_000_000L;
  Snapshot.W.list w
    (fun w (addr, bytes) ->
      Snapshot.W.i64 w addr;
      Snapshot.W.string w bytes)
    [ (2L, frame); (16L, frame) ];  (* pages at 0x2000, 0x10000 *)
  let m = Physmem.create ~size:1_000_000L () in
  Physmem.restore (Snapshot.R.of_string (Snapshot.W.contents w)) m;
  Alcotest.(check int) "two frames restored" 2 (Physmem.touched_frames m);
  Alcotest.(check string) "frame content" frame
    (Physmem.read_bytes m 8192L page);
  Alcotest.(check int) "second frame, view path"
    (Char.code frame.[17])
    (Char.code (Bigarray.Array1.get (Physmem.view m 65_536L page) 17));
  let w2 = Snapshot.W.create () in
  Snapshot.W.i64 w2 999_999L;
  let m2 = Physmem.create ~size:1_000_000L () in
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Physmem.restore: DRAM size differs from checkpoint")
    (fun () -> Physmem.restore (Snapshot.R.of_string (Snapshot.W.contents w2)) m2)

let physmem_roundtrip_prop =
  QCheck.Test.make ~name:"physmem write/read roundtrip" ~count:200
    QCheck.(pair (int_bound 100_000) (string_of_size Gen.(int_range 1 300)))
    (fun (addr, data) ->
      let m = Physmem.create ~size:1_000_000L () in
      let addr = Int64.of_int addr in
      Physmem.write_bytes m addr data;
      String.equal (Physmem.read_bytes m addr (String.length data)) data)

let () =
  Alcotest.run "mem"
    [
      ( "layout",
        [
          Alcotest.test_case "alignment" `Quick test_layout_alignment;
          Alcotest.test_case "pages" `Quick test_layout_pages;
        ] );
      ( "buddy",
        [
          Alcotest.test_case "alloc/free" `Quick test_buddy_alloc_free;
          Alcotest.test_case "power-of-two rounding" `Quick test_buddy_rounds_to_power_of_two;
          Alcotest.test_case "exhaustion" `Quick test_buddy_exhaustion;
          Alcotest.test_case "distinct addresses" `Quick test_buddy_distinct_addresses;
          Alcotest.test_case "double free rejected" `Quick test_buddy_double_free_rejected;
          Alcotest.test_case "size mismatch rejected" `Quick test_buddy_size_mismatch_rejected;
          Alcotest.test_case "fragmentation/coalesce" `Quick test_buddy_fragmentation_then_coalesce;
          QCheck_alcotest.to_alcotest buddy_invariant_prop;
        ] );
      ( "physmem",
        [
          Alcotest.test_case "read/write" `Quick test_physmem_rw;
          Alcotest.test_case "zero fill" `Quick test_physmem_zero_fill;
          Alcotest.test_case "cross page" `Quick test_physmem_cross_page;
          Alcotest.test_case "bounds" `Quick test_physmem_bounds;
          Alcotest.test_case "sparse" `Quick test_physmem_sparse;
          Alcotest.test_case "byte aliases" `Quick test_physmem_byte_aliases;
          Alcotest.test_case "view coherence" `Quick test_physmem_view_coherence;
          Alcotest.test_case "view then save" `Quick test_physmem_view_then_save;
          Alcotest.test_case "snapshot roundtrip" `Quick
            test_physmem_snapshot_roundtrip;
          Alcotest.test_case "old snapshot format" `Quick
            test_physmem_restores_old_format;
          QCheck_alcotest.to_alcotest physmem_roundtrip_prop;
        ] );
    ]
