(* Security tests: the isolation properties §2.2 assigns to the bus/IOMMU
   split, exercised end to end against a booted system. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Engine = Lastcpu_sim.Engine
module System = Lastcpu_core.System
module Scenario = Lastcpu_core.Scenario_kvs
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Smart_nic = Lastcpu_devices.Smart_nic
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Memctl = Lastcpu_devices.Memctl
module Auth_dev = Lastcpu_devices.Auth_dev
module Dma = Lastcpu_virtio.Dma
module Iommu = Lastcpu_iommu.Iommu
module File_client = Lastcpu_devices.File_client

let booted ?spec () =
  let system = System.build ?spec () in
  match System.boot system with
  | Ok () -> system
  | Error e -> Alcotest.fail e

let test_cross_pasid_no_access () =
  (* App A allocates memory; app B (same device, different PASID) cannot
     read it: the address is simply unmapped in B's address space. *)
  let system = booted () in
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let pasid_a = System.fresh_pasid system in
  let pasid_b = System.fresh_pasid system in
  let allocated = ref false in
  Device.alloc dev ~memctl:mc ~pasid:pasid_a ~va:0x4000_0000L ~bytes:4096L
    ~perm:Types.perm_rw (fun r -> allocated := Result.is_ok r);
  System.run_until_idle system;
  Alcotest.(check bool) "A allocated" true !allocated;
  let dma_a = Device.dma dev ~pasid:pasid_a in
  Dma.write_u64 dma_a 0x4000_0000L 0x5EC2E7L;
  let dma_b = Device.dma dev ~pasid:pasid_b in
  match Dma.read_u64 dma_b 0x4000_0000L with
  | _ -> Alcotest.fail "PASID isolation breached"
  | exception Dma.Dma_fault f ->
    Alcotest.(check bool) "not mapped for B" true (f.Iommu.reason = Iommu.Not_mapped)

let test_forged_alloc_response_cannot_map () =
  (* A malicious device sends a Map_directive with a token it minted
     itself (it is not the registered controller): the bus refuses. *)
  let system = booted () in
  let bus = System.bus system in
  let dev = Smart_nic.device (System.nic system 0) in
  let evil_key = 0xE717L in
  let token =
    Token.mint ~key:evil_key ~issuer:(Device.id dev) ~subject:(Device.id dev)
      ~pasid:33 ~resource:"dram" ~base:0x1000_0000L ~length:4096L
      ~perm:Types.perm_rw ~nonce:1L ()
  in
  Device.request dev ~dst:Types.Bus
    (Message.Map_directive
       {
         device = Device.id dev;
         pasid = 33;
         va = 0x4000_0000L;
         pa = 0x1000_0000L;
         bytes = 4096L;
         perm = Types.perm_rw;
         auth = token;
       })
    (fun _ -> ());
  System.run_until_idle system;
  Alcotest.(check bool) "token failure recorded" true
    ((Sysbus.counters bus).Sysbus.token_failures > 0);
  let dma = Device.dma dev ~pasid:33 in
  match Dma.read_u8 dma 0x4000_0000L with
  | _ -> Alcotest.fail "forged mapping installed"
  | exception Dma.Dma_fault _ -> ()

let test_replayed_token_for_wrong_range () =
  (* A legitimate token cannot be stretched: mapping outside its physical
     range is refused even with a valid MAC. *)
  let system = booted () in
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let pasid = System.fresh_pasid system in
  let token = ref None in
  Device.alloc dev ~memctl:mc ~pasid ~va:0x4000_0000L ~bytes:4096L
    ~perm:Types.perm_rw (fun r -> token := Result.to_option r);
  System.run_until_idle system;
  match !token with
  | None -> Alcotest.fail "alloc failed"
  | Some tok ->
    (* Try to wield the token for a *different* virtual range with no
       backing mapping: grant must fail (owner has no mapping there). *)
    let denied = ref false in
    Device.grant dev
      ~to_device:(Smart_ssd.id (System.ssd system 0))
      ~pasid ~va:0x7777_0000L ~bytes:4096L ~perm:Types.perm_rw ~auth:tok
      (fun r -> denied := Result.is_error r);
    System.run_until_idle system;
    Alcotest.(check bool) "grant outside mapping denied" true !denied

let test_grant_perm_cannot_exceed_token () =
  let system = booted () in
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let pasid = System.fresh_pasid system in
  let token = ref None in
  (* Read-only allocation. *)
  Device.alloc dev ~memctl:mc ~pasid ~va:0x4000_0000L ~bytes:4096L
    ~perm:Types.perm_r (fun r -> token := Result.to_option r);
  System.run_until_idle system;
  match !token with
  | None -> Alcotest.fail "alloc failed"
  | Some tok ->
    let denied = ref false in
    Device.grant dev
      ~to_device:(Smart_ssd.id (System.ssd system 0))
      ~pasid ~va:0x4000_0000L ~bytes:4096L ~perm:Types.perm_rw ~auth:tok
      (fun r -> denied := Result.is_error r);
    System.run_until_idle system;
    Alcotest.(check bool) "rw grant from r token denied" true !denied

let test_fs_access_control_cross_user () =
  (* §4 access control: per-file enforcement happens on the SSD. *)
  match Scenario.run ~smoke_ops:0 () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let fs = Smart_ssd.fs (System.ssd system 0) in
    (match Lastcpu_fs.Fs.chmod fs ~user:"root" "/kv/data.log" ~mode:0o600 with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Lastcpu_fs.Fs.error_to_string e));
    (* A second client under a different user cannot read the KVS log. *)
    let dev = Smart_nic.device (System.nic system 0) in
    let fc = ref None in
    File_client.connect dev
      ~memctl:(Memctl.id (System.memctl system))
      ~pasid:(System.fresh_pasid system)
      ~shm_va:0xB000_0000L ~user:"mallory" ~path_hint:"/kv/data.log"
      (fun r -> fc := Result.to_option r);
    System.run_until_idle system;
    (match !fc with
    | None -> Alcotest.fail "connect failed"
    | Some fc ->
      let result = ref None in
      File_client.read fc "/kv/data.log" ~off:0 ~len:16 (fun r -> result := Some r);
      System.run_until_idle system;
      match !result with
      | Some (Error _) -> ()
      | Some (Ok _) -> Alcotest.fail "mallory read the log"
      | None -> Alcotest.fail "read never completed")

let test_session_tokens_required_when_auth_enabled () =
  let spec =
    {
      System.default_spec with
      with_auth = true;
      users = [ ("alice", "pw") ];
    }
  in
  let system = booted ~spec () in
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  (* Without a session token, opening the file service is denied. *)
  let fc = ref None in
  File_client.connect dev ~memctl:mc ~pasid:(System.fresh_pasid system)
    ~shm_va:0x4000_0000L ~user:"alice" ~path_hint:"" (fun r -> fc := Some r);
  System.run_until_idle system;
  (match !fc with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "open accepted without session"
  | None -> Alcotest.fail "connect never completed");
  (* Authenticate, then retry with the session token. *)
  let auth =
    match System.auth system with Some a -> a | None -> Alcotest.fail "no auth dev"
  in
  let session = ref None in
  Device.request dev ~dst:(Types.Device (Auth_dev.id auth))
    (Message.Auth_request { user = "alice"; credential = "pw" })
    (fun p ->
      match p with
      | Message.Auth_response { ok = true; session = Some s } -> session := Some s
      | _ -> ());
  System.run_until_idle system;
  match !session with
  | None -> Alcotest.fail "authentication failed"
  | Some s ->
    let fc2 = ref None in
    File_client.connect dev ~memctl:mc ~pasid:(System.fresh_pasid system)
      ~shm_va:0x4800_0000L ~user:"alice" ~path_hint:"" ~auth:s (fun r ->
        fc2 := Some r);
    System.run_until_idle system;
    (match !fc2 with
    | Some (Ok _) -> ()
    | Some (Error e) -> Alcotest.fail ("authorized open failed: " ^ e)
    | None -> Alcotest.fail "connect never completed")

let test_session_token_wrong_user_rejected () =
  let spec =
    {
      System.default_spec with
      with_auth = true;
      users = [ ("alice", "pw"); ("bob", "pw2") ];
    }
  in
  let system = booted ~spec () in
  let dev = Smart_nic.device (System.nic system 0) in
  let auth = Option.get (System.auth system) in
  let session = ref None in
  Device.request dev ~dst:(Types.Device (Auth_dev.id auth))
    (Message.Auth_request { user = "bob"; credential = "pw2" })
    (fun p ->
      match p with
      | Message.Auth_response { session = s; _ } -> session := s
      | _ -> ());
  System.run_until_idle system;
  match !session with
  | None -> Alcotest.fail "bob auth failed"
  | Some bob_session ->
    (* Present bob's session while claiming to be alice. *)
    let fc = ref None in
    File_client.connect dev
      ~memctl:(Memctl.id (System.memctl system))
      ~pasid:(System.fresh_pasid system)
      ~shm_va:0x4000_0000L ~user:"alice" ~path_hint:"" ~auth:bob_session
      (fun r -> fc := Some r);
    System.run_until_idle system;
    (match !fc with
    | Some (Error _) -> ()
    | Some (Ok _) -> Alcotest.fail "identity confusion accepted"
    | None -> Alcotest.fail "connect never completed")

let () =
  Alcotest.run "security"
    [
      ( "memory isolation",
        [
          Alcotest.test_case "cross-pasid" `Quick test_cross_pasid_no_access;
          Alcotest.test_case "forged directive" `Quick test_forged_alloc_response_cannot_map;
          Alcotest.test_case "token range pinned" `Quick test_replayed_token_for_wrong_range;
          Alcotest.test_case "grant perm bounded" `Quick test_grant_perm_cannot_exceed_token;
        ] );
      ( "access control",
        [
          Alcotest.test_case "fs cross-user" `Quick test_fs_access_control_cross_user;
          Alcotest.test_case "session required" `Quick
            test_session_tokens_required_when_auth_enabled;
          Alcotest.test_case "session user binding" `Quick
            test_session_token_wrong_user_rejected;
        ] );
    ]
