(* Tests for the bus protocol: wire primitives, tokens, codec round-trips. *)

module Types = Lastcpu_proto.Types
module Token = Lastcpu_proto.Token
module Message = Lastcpu_proto.Message
module Codec = Lastcpu_proto.Codec
module Wire = Lastcpu_proto.Wire
module Slice = Lastcpu_proto.Slice

(* --- Wire primitives ---------------------------------------------------- *)

let test_wire_roundtrip_scalars () =
  let w = Wire.Writer.create () in
  Wire.Writer.byte w 0xAB;
  Wire.Writer.varint w 0;
  Wire.Writer.varint w 127;
  Wire.Writer.varint w 128;
  Wire.Writer.varint w 1_000_000;
  Wire.Writer.int64 w (-1L);
  Wire.Writer.int64 w 0x0123456789ABCDEFL;
  Wire.Writer.string w "hello";
  Wire.Writer.string w "";
  Wire.Writer.bool w true;
  Wire.Writer.bool w false;
  let r = Wire.Reader.create (Wire.Writer.contents w) in
  Alcotest.(check int) "byte" 0xAB (Wire.Reader.byte r);
  Alcotest.(check int) "v0" 0 (Wire.Reader.varint r);
  Alcotest.(check int) "v127" 127 (Wire.Reader.varint r);
  Alcotest.(check int) "v128" 128 (Wire.Reader.varint r);
  Alcotest.(check int) "v1M" 1_000_000 (Wire.Reader.varint r);
  Alcotest.(check int64) "i64 -1" (-1L) (Wire.Reader.int64 r);
  Alcotest.(check int64) "i64 pattern" 0x0123456789ABCDEFL (Wire.Reader.int64 r);
  Alcotest.(check string) "string" "hello" (Wire.Reader.string r);
  Alcotest.(check string) "empty string" "" (Wire.Reader.string r);
  Alcotest.(check bool) "true" true (Wire.Reader.bool r);
  Alcotest.(check bool) "false" false (Wire.Reader.bool r);
  Alcotest.(check bool) "at end" true (Wire.Reader.at_end r)

let test_wire_truncation_raises () =
  let w = Wire.Writer.create () in
  Wire.Writer.string w "truncate-me";
  let full = Wire.Writer.contents w in
  let cut = String.sub full 0 (String.length full - 3) in
  let r = Wire.Reader.create cut in
  Alcotest.check_raises "truncated string" (Wire.Malformed "truncated string")
    (fun () -> ignore (Wire.Reader.string r))

let test_wire_list_option () =
  let w = Wire.Writer.create () in
  Wire.Writer.list w Wire.Writer.varint [ 1; 2; 3 ];
  Wire.Writer.option w Wire.Writer.string (Some "x");
  Wire.Writer.option w Wire.Writer.string None;
  let r = Wire.Reader.create (Wire.Writer.contents w) in
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Wire.Reader.list r Wire.Reader.varint);
  Alcotest.(check (option string)) "some" (Some "x") (Wire.Reader.option r Wire.Reader.string);
  Alcotest.(check (option string)) "none" None (Wire.Reader.option r Wire.Reader.string)

(* --- Types --------------------------------------------------------------- *)

let test_perm_subsumes () =
  Alcotest.(check bool) "rw covers r" true
    (Types.perm_subsumes Types.perm_rw Types.perm_r);
  Alcotest.(check bool) "r does not cover rw" false
    (Types.perm_subsumes Types.perm_r Types.perm_rw);
  Alcotest.(check bool) "anything covers none" true
    (Types.perm_subsumes Types.perm_none Types.perm_none);
  Alcotest.(check bool) "rwx covers all" true
    (Types.perm_subsumes Types.perm_rwx Types.perm_rw)

let test_service_kind_strings () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Types.service_kind_to_string k))
        (Option.map Types.service_kind_to_string
           (Types.service_kind_of_string (Types.service_kind_to_string k))))
    Types.all_service_kinds

(* --- Tokens ---------------------------------------------------------------- *)

let mk_token ?(key = 0x1234L) () =
  Token.mint ~key ~issuer:1 ~subject:2 ~pasid:7 ~resource:"dram"
    ~base:0x1000L ~length:4096L ~perm:Types.perm_rw ~nonce:99L ()

let test_token_verify () =
  let t = mk_token () in
  Alcotest.(check bool) "verifies" true (Token.verify ~key:0x1234L t);
  Alcotest.(check bool) "wrong key" false (Token.verify ~key:0x1235L t)

let test_token_tamper_fields () =
  let t = mk_token () in
  let check name t' =
    Alcotest.(check bool) name false (Token.verify ~key:0x1234L t')
  in
  check "issuer" { t with Token.issuer = 3 };
  check "subject" { t with Token.subject = 3 };
  check "pasid" { t with Token.pasid = 8 };
  check "resource" { t with Token.resource = "dram2" };
  check "base" { t with Token.base = 0x2000L };
  check "length" { t with Token.length = 8192L };
  check "perm" { t with Token.perm = Types.perm_rwx };
  check "nonce" { t with Token.nonce = 100L };
  check "mac" { t with Token.mac = Int64.add t.Token.mac 1L }

(* --- Codec ------------------------------------------------------------------- *)

let sample_service = { Message.kind = Types.File_service; name = "ssd0.fs"; version = 3 }

let sample_payloads : Message.payload list =
  [
    Message.Device_alive { services = [ sample_service ] };
    Message.Device_alive { services = [] };
    Message.Heartbeat;
    Message.Discover_request { kind = Types.Memory_service; query = "dram" };
    Message.Discover_response { provider = 4; service = sample_service; query = "/f" };
    Message.Open_service
      {
        service = sample_service;
        pasid = 12;
        auth = Some (mk_token ());
        params = [ ("user", "alice"); ("path", "/kv/data.log") ];
      };
    Message.Open_response
      { accepted = true; connection = 9; shm_bytes = 65536L; error = None };
    Message.Open_response
      {
        accepted = false;
        connection = 0;
        shm_bytes = 0L;
        error = Some Types.E_access_denied;
      };
    Message.Close_service { connection = 5 };
    Message.Alloc_request
      { pasid = 1; va = 0x4000_0000L; bytes = 16384L; perm = Types.perm_rw };
    Message.Alloc_response
      {
        ok = true;
        va = 0x4000_0000L;
        bytes = 16384L;
        grant = Some (mk_token ());
        error = None;
      };
    Message.Map_directive
      {
        device = 3;
        pasid = 1;
        va = 0x4000_0000L;
        pa = 0x1000_0000L;
        bytes = 16384L;
        perm = Types.perm_rw;
        auth = mk_token ();
      };
    Message.Grant_request
      {
        to_device = 2;
        pasid = 1;
        va = 0x4000_0000L;
        bytes = 16384L;
        perm = Types.perm_r;
        auth = mk_token ();
      };
    Message.Map_complete { pasid = 1; va = 0x4000_0000L; ok = true };
    Message.Free_request { pasid = 1; va = 0x4000_0000L; bytes = 16384L };
    Message.Unmap_directive
      {
        device = 3;
        pasid = 1;
        va = 0x4000_0000L;
        bytes = 16384L;
        auth = mk_token ();
      };
    Message.Doorbell { queue = 77 };
    Message.Fault_notify { pasid = 2; va = 0xDEADL; detail = "oops" };
    Message.Resource_failed { resource = "file:/kv/data.log" };
    Message.Device_failed { device = 6 };
    Message.Reset_device;
    Message.Reset_resource { resource = "dram" };
    Message.Load_image { image = "kvs.bin"; bytes = 1048576L };
    Message.Auth_request { user = "alice"; credential = "s3cret" };
    Message.Auth_response { ok = true; session = Some (mk_token ()) };
    Message.Auth_response { ok = false; session = None };
    Message.Error_msg { code = Types.E_no_memory; detail = "pool exhausted" };
    Message.App_message { tag = "vq-attach"; body = "\x00\x01\x02binary" };
  ]

let test_codec_roundtrip_all () =
  List.iteri
    (fun i payload ->
      let msg =
        Message.make ~src:(i mod 5)
          ~dst:(match i mod 3 with 0 -> Types.Device 9 | 1 -> Types.Bus | _ -> Types.Broadcast)
          ~corr:(i * 1000) payload
      in
      let decoded = Codec.decode (Codec.encode msg) in
      Alcotest.(check string)
        (Printf.sprintf "payload %d (%s)" i (Message.payload_tag payload))
        (Format.asprintf "%a" Message.pp msg)
        (Format.asprintf "%a" Message.pp decoded);
      Alcotest.(check bool)
        (Printf.sprintf "structural equality %d" i)
        true (msg = decoded))
    sample_payloads

let test_codec_rejects_garbage () =
  Alcotest.check_raises "bad tag" (Wire.Malformed "bad payload tag 200") (fun () ->
      (* src=0, dst tag=1 (Bus), corr=0, payload tag=200 *)
      ignore (Codec.decode "\x00\x01\x00\xc8"));
  (match Codec.decode "" with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "empty frame accepted")

let test_codec_rejects_trailing () =
  let msg = Message.make ~src:0 ~dst:Types.Bus ~corr:0 Message.Heartbeat in
  let encoded = Codec.encode msg ^ "\x00" in
  match Codec.decode encoded with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

let test_codec_deadline_roundtrip () =
  let with_deadline =
    Message.make ~src:1 ~dst:(Types.Device 2) ~corr:7
      ~deadline_ns:123_456_789L
      (Message.Alloc_request
         { pasid = 1; va = 0x4000_0000L; bytes = 4096L; perm = Types.perm_rw })
  in
  let decoded = Codec.decode (Codec.encode with_deadline) in
  Alcotest.(check bool) "deadline survives" true (with_deadline = decoded);
  Alcotest.(check bool) "deadline present" true
    (decoded.Message.deadline_ns = Some 123_456_789L);
  let without =
    Message.make ~src:1 ~dst:(Types.Device 2) ~corr:7 Message.Heartbeat
  in
  Alcotest.(check bool) "no deadline by default" true
    ((Codec.decode (Codec.encode without)).Message.deadline_ns = None)

(* Frames from before the deadline trailer existed must still decode (as
   deadline-free): peers with older encodings stay interoperable. *)
let test_codec_accepts_legacy_frames () =
  let msg = Message.make ~src:3 ~dst:Types.Bus ~corr:9 Message.Heartbeat in
  let framed = Codec.encode msg in
  (* Strip the one-byte [None] trailer to reconstruct the legacy frame. *)
  let legacy = String.sub framed 0 (String.length framed - 1) in
  let decoded = Codec.decode legacy in
  Alcotest.(check bool) "legacy frame decodes" true (msg = decoded);
  Alcotest.(check bool) "no deadline" true (decoded.Message.deadline_ns = None)

(* Property: random fuzz of valid encodings with a flipped byte either decodes
   to something (fine) or raises Malformed — never crashes differently. *)
let codec_fuzz_prop =
  QCheck.Test.make ~name:"codec survives single-byte corruption" ~count:500
    QCheck.(pair (int_bound (List.length sample_payloads - 1)) (pair small_nat (int_bound 255)))
    (fun (pi, (pos, byte)) ->
      let payload = List.nth sample_payloads pi in
      let msg = Message.make ~src:1 ~dst:Types.Bus ~corr:42 payload in
      let encoded = Bytes.of_string (Codec.encode msg) in
      let pos = pos mod Bytes.length encoded in
      Bytes.set encoded pos (Char.chr byte);
      match Codec.decode (Bytes.to_string encoded) with
      | _ -> true
      | exception Wire.Malformed _ -> true)

let test_wire_size_positive () =
  List.iter
    (fun payload ->
      let msg = Message.make ~src:0 ~dst:Types.Bus ~corr:0 payload in
      Alcotest.(check bool) "positive" true (Message.wire_size msg > 0))
    sample_payloads

(* --- Zero-copy codec ----------------------------------------------------- *)

(* The contract behind direct-view encoding: for EVERY payload
   constructor, [encoded_size] equals the byte length [encode] produces,
   and [encode_into] lays down exactly those bytes at the requested view
   offset. [sample_payloads] covers each constructor, so adding a payload
   without extending the Emit functor trips this test. *)
let test_encoded_size_all_constructors () =
  let check_msg label msg =
    let s = Codec.encode msg in
    Alcotest.(check int)
      (label ^ ": encoded_size")
      (String.length s) (Codec.encoded_size msg);
    let v = Slice.create (String.length s + 7) in
    let n = Codec.encode_into msg v ~pos:3 in
    Alcotest.(check int) (label ^ ": encode_into length") (String.length s) n;
    Alcotest.(check string)
      (label ^ ": encode_into bytes")
      s
      (Slice.to_string v ~pos:3 ~len:n)
  in
  List.iteri
    (fun i payload ->
      let msg =
        Message.make ~src:(i mod 5)
          ~dst:
            (match i mod 3 with
            | 0 -> Types.Device 9
            | 1 -> Types.Bus
            | _ -> Types.Broadcast)
          ~corr:(i * 1000) payload
      in
      check_msg (Message.payload_tag payload) msg)
    sample_payloads;
  (* The deadline trailer changes the frame length; the sizer must track it. *)
  check_msg "deadline trailer"
    (Message.make ~src:1 ~dst:Types.Bus ~corr:7 ~deadline_ns:123_456_789L
       Message.Heartbeat)

(* --- CRC-32 stub --------------------------------------------------------- *)

(* The C stub must be bit-identical to the original OCaml loop: WAL
   records and NAND page checksums feed golden digests, so a divergence
   would corrupt every pinned experiment. Lengths probe the slice-by-8
   boundary (0..32) plus a full NAND page. *)
let test_crc32_stub_matches_reference () =
  let check s =
    Alcotest.(check int)
      (Printf.sprintf "crc32 of %d bytes" (String.length s))
      (Wire.crc32_reference s) (Wire.crc32 s)
  in
  check "";
  Alcotest.(check int) "IEEE 802.3 check value" 0xCBF43926
    (Wire.crc32 "123456789");
  for len = 0 to 32 do
    check (String.init len (fun i -> Char.chr ((i * 37) land 0xff)))
  done;
  check (String.init 4096 (fun i -> Char.chr ((i * 131) land 0xff)));
  let s = "hello, world" in
  Alcotest.(check int) "crc32_sub window" (Wire.crc32 (String.sub s 3 5))
    (Wire.crc32_sub s 3 5);
  Alcotest.check_raises "crc32_sub bounds"
    (Invalid_argument "Wire.crc32_sub") (fun () ->
      ignore (Wire.crc32_sub s 8 10))

let () =
  Alcotest.run "proto"
    [
      ( "wire",
        [
          Alcotest.test_case "scalar roundtrips" `Quick test_wire_roundtrip_scalars;
          Alcotest.test_case "truncation raises" `Quick test_wire_truncation_raises;
          Alcotest.test_case "list/option" `Quick test_wire_list_option;
        ] );
      ( "types",
        [
          Alcotest.test_case "perm subsumes" `Quick test_perm_subsumes;
          Alcotest.test_case "service kind strings" `Quick test_service_kind_strings;
        ] );
      ( "token",
        [
          Alcotest.test_case "verify" `Quick test_token_verify;
          Alcotest.test_case "tamper detection" `Quick test_token_tamper_fields;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip all payloads" `Quick test_codec_roundtrip_all;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "rejects trailing bytes" `Quick test_codec_rejects_trailing;
          Alcotest.test_case "deadline roundtrip" `Quick test_codec_deadline_roundtrip;
          Alcotest.test_case "legacy frames" `Quick test_codec_accepts_legacy_frames;
          QCheck_alcotest.to_alcotest codec_fuzz_prop;
          Alcotest.test_case "wire size positive" `Quick test_wire_size_positive;
          Alcotest.test_case "encoded_size every constructor" `Quick
            test_encoded_size_all_constructors;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "stub matches reference" `Quick
            test_crc32_stub_matches_reference;
        ] );
    ]
