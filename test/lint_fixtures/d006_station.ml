(* Fixture: D006 — direct station submits bypassing the boundary mailbox. *)
let rush st k = Station.submit st ~service:100L k
let sneak st k = match Station.try_submit st ~service:10L k with
  | true -> ()
  | false -> ()
