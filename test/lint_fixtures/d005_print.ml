(* Fixture: D005 — ambient-channel printing from library code. *)
let report n = Printf.printf "count=%d\n" n
let shout () = print_endline "done"
