(* Fixture: D003 — wall-clock and environment reads. *)
let stamp () = Sys.time ()
let shard () = Sys.getenv "SHARD"
