(* Fixture: D002 — ambient global Random generator. *)
let jitter () = Random.int 100
let coin () = Stdlib.Random.bool ()
