(* Fixture: no determinism hazards — must produce zero findings. *)
let add a b = a + b
let render buf n = Buffer.add_string buf (string_of_int n)
let structural a b = a = b
