(* Fixture: D009 — Physmem copy path in data-plane hot code. *)
let slurp m pa len = Physmem.read_bytes m pa len
let stuff m pa s = Physmem.write_bytes m pa s
(* The _sub variants and views are not the copy path and must not fire. *)
let ok m pa s = Physmem.write_string_sub m pa s ~pos:0 ~len:(String.length s)
let also_ok m pa len = Physmem.view m pa len
