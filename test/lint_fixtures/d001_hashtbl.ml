(* Fixture: D001 — unordered Hashtbl iteration. *)
let tally tbl = Hashtbl.iter (fun _ v -> ignore v) tbl
let total tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
let fine tbl = Hashtbl.length tbl
