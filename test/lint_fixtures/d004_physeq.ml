(* Fixture: D004 — representation-dependent constructs. *)
let snapshot v = Marshal.to_string v []
let same a b = a == b
let diff a b = a != b
