(* Tests for the KVS: WAL codec, store logic over the memory backend, and
   the full stack over the smart SSD data plane. *)

module Wal = Lastcpu_kv.Wal
module Store = Lastcpu_kv.Store
module Kv_proto = Lastcpu_kv.Kv_proto
module Kv_app = Lastcpu_kv.Kv_app
module Scenario = Lastcpu_core.Scenario_kvs
module System = Lastcpu_core.System

(* --- WAL ---------------------------------------------------------------- *)

let test_wal_roundtrip () =
  let records =
    [
      Wal.Put { key = "k1"; value = "v1" };
      Wal.Del { key = "k1" };
      Wal.Put { key = ""; value = "" };
      Wal.Put { key = "binary\x00key"; value = String.make 300 '\xff' };
    ]
  in
  let encoded = String.concat "" (List.map Wal.encode records) in
  let decoded, stop = Wal.decode_all encoded in
  Alcotest.(check int) "full parse" (String.length encoded) stop;
  Alcotest.(check int) "count" (List.length records) (List.length decoded);
  Alcotest.(check bool) "equal" true (records = decoded)

let test_wal_torn_tail () =
  let r1 = Wal.encode (Wal.Put { key = "a"; value = "1" }) in
  let r2 = Wal.encode (Wal.Put { key = "b"; value = "2" }) in
  let torn = r1 ^ String.sub r2 0 (String.length r2 - 1) in
  let decoded, stop = Wal.decode_all torn in
  Alcotest.(check int) "one record" 1 (List.length decoded);
  Alcotest.(check int) "stops at torn record" (String.length r1) stop

let test_wal_garbage_tail () =
  let r1 = Wal.encode (Wal.Del { key = "x" }) in
  let garbage = r1 ^ "\x05\x00\x00\x00\xffgarb" in
  let decoded, _ = Wal.decode_all garbage in
  Alcotest.(check int) "garbage ignored" 1 (List.length decoded)

(* A record body damaged in place (bit rot, not truncation) must fail its
   CRC and stop the parse exactly like a torn tail. *)
let test_wal_crc_detects_bit_rot () =
  let r1 = Wal.encode (Wal.Put { key = "a"; value = "1" }) in
  let r2 = Wal.encode (Wal.Put { key = "b"; value = "2" }) in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  in
  (* Flip one bit in r2's body (past its 8-byte header). *)
  let damaged = r1 ^ flip r2 9 in
  let decoded, stop = Wal.decode_all damaged in
  Alcotest.(check int) "stops before damaged record" 1 (List.length decoded);
  Alcotest.(check int) "damage point" (String.length r1) stop;
  (* A flipped CRC word (header damage) is caught the same way. *)
  let decoded, _ = Wal.decode_all (r1 ^ flip r2 5) in
  Alcotest.(check int) "crc word damage" 1 (List.length decoded)

(* Logs written before the CRC existed ([u32 len | body], no top bit) must
   still replay: upgraded code meets old logs on disk. *)
let test_wal_accepts_legacy_records () =
  let legacy r =
    let framed = Wal.encode r in
    let body = String.sub framed 8 (String.length framed - 8) in
    let len = String.length body in
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr (len land 0xff));
    Bytes.set b 1 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set b 2 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set b 3 (Char.chr ((len lsr 24) land 0xff));
    Bytes.to_string b ^ body
  in
  let records =
    [ Wal.Put { key = "old"; value = "value" }; Wal.Del { key = "old" } ]
  in
  let mixed =
    (* Legacy records followed by a current one: both formats in one log. *)
    String.concat "" (List.map legacy records)
    ^ Wal.encode (Wal.Put { key = "new"; value = "v" })
  in
  let decoded, stop = Wal.decode_all mixed in
  Alcotest.(check int) "full parse" (String.length mixed) stop;
  Alcotest.(check bool) "records preserved" true
    (decoded = records @ [ Wal.Put { key = "new"; value = "v" } ]);
  (* A torn legacy tail still stops cleanly. *)
  let l = legacy (Wal.Put { key = "t"; value = "orn" }) in
  let decoded, stop = Wal.decode_all (String.sub l 0 (String.length l - 1)) in
  Alcotest.(check int) "torn legacy" 0 (List.length decoded);
  Alcotest.(check int) "at start" 0 stop

let wal_prop =
  QCheck.Test.make ~name:"wal roundtrip arbitrary records" ~count:200
    QCheck.(list (pair string (option string)))
    (fun pairs ->
      let records =
        List.map
          (fun (key, v) ->
            match v with
            | Some value -> Wal.Put { key; value }
            | None -> Wal.Del { key })
          pairs
      in
      let encoded = String.concat "" (List.map Wal.encode records) in
      let decoded, _ = Wal.decode_all encoded in
      records = decoded)

(* --- Store over the memory backend ----------------------------------------- *)

let sync r = match !r with Some v -> v | None -> Alcotest.fail "not completed"

let test_store_basic () =
  let store = Store.create (Store.memory_backend ()) in
  let r = ref None in
  Store.put store ~key:"a" ~value:"1" (fun x -> r := Some x);
  (match sync r with Ok () -> () | Error e -> Alcotest.fail e);
  let g = ref None in
  Store.get store "a" (fun x -> g := Some x);
  Alcotest.(check (option string)) "get" (Some "1") (sync g);
  let d = ref None in
  Store.delete store "a" (fun x -> d := Some x);
  (match sync d with Ok true -> () | _ -> Alcotest.fail "delete");
  let g2 = ref None in
  Store.get store "a" (fun x -> g2 := Some x);
  Alcotest.(check (option string)) "gone" None (sync g2);
  let d2 = ref None in
  Store.delete store "a" (fun x -> d2 := Some x);
  match sync d2 with
  | Ok false -> ()
  | _ -> Alcotest.fail "absent delete should be Ok false"

let test_store_overwrite () =
  let store = Store.create (Store.memory_backend ()) in
  Store.put store ~key:"k" ~value:"old" (fun _ -> ());
  Store.put store ~key:"k" ~value:"new" (fun _ -> ());
  let g = ref None in
  Store.get store "k" (fun x -> g := Some x);
  Alcotest.(check (option string)) "latest" (Some "new") (sync g)

let test_store_recover_replays_log () =
  let backend = Store.memory_backend () in
  let store = Store.create backend in
  Store.put store ~key:"a" ~value:"1" (fun _ -> ());
  Store.put store ~key:"b" ~value:"2" (fun _ -> ());
  Store.delete store "a" (fun _ -> ());
  Store.put store ~key:"c" ~value:"3" (fun _ -> ());
  (* A second store over the same backend recovers the same state. *)
  let store2 = Store.create backend in
  let n = ref None in
  Store.recover store2 (fun x -> n := Some x);
  (match sync n with
  | Ok records -> Alcotest.(check int) "records" 4 records
  | Error e -> Alcotest.fail e);
  let check key expect =
    let g = ref None in
    Store.get store2 key (fun x -> g := Some x);
    Alcotest.(check (option string)) key expect (sync g)
  in
  check "a" None;
  check "b" (Some "2");
  check "c" (Some "3")

let test_store_scan_prefix () =
  let store = Store.create (Store.memory_backend ()) in
  List.iter
    (fun (k, v) -> Store.put store ~key:k ~value:v (fun _ -> ()))
    [ ("user:1", "alice"); ("user:2", "bob"); ("item:1", "x") ];
  let got = ref None in
  Store.scan_prefix store ~prefix:"user:" (fun pairs -> got := Some pairs);
  Alcotest.(check (list (pair string string)))
    "scan sorted"
    [ ("user:1", "alice"); ("user:2", "bob") ]
    (sync got)

let test_store_compact_preserves_state () =
  let backend = Store.memory_backend () in
  let store = Store.create backend in
  for i = 1 to 50 do
    Store.put store ~key:"hot" ~value:(string_of_int i) (fun _ -> ())
  done;
  Store.put store ~key:"cold" ~value:"keep" (fun _ -> ());
  let c = ref None in
  Store.compact store (fun x -> c := Some x);
  (match sync c with Ok () -> () | Error e -> Alcotest.fail e);
  (* Recovery after compaction sees only live records. *)
  let store2 = Store.create backend in
  let n = ref None in
  Store.recover store2 (fun x -> n := Some x);
  (match sync n with
  | Ok records -> Alcotest.(check int) "compacted to live set" 2 records
  | Error e -> Alcotest.fail e);
  let g = ref None in
  Store.get store2 "hot" (fun x -> g := Some x);
  Alcotest.(check (option string)) "hot" (Some "50") (sync g)

let store_model_prop =
  QCheck.Test.make ~name:"store matches Hashtbl model (memory backend)" ~count:100
    QCheck.(list (pair (int_bound 20) (option (string_of_size (Gen.return 5)))))
    (fun script ->
      let store = Store.create (Store.memory_backend ()) in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let key = Printf.sprintf "k%d" k in
          match v with
          | Some value ->
            Store.put store ~key ~value (fun _ -> ());
            Hashtbl.replace model key value
          | None ->
            Store.delete store key (fun _ -> ());
            Hashtbl.remove model key)
        script;
      Hashtbl.fold
        (fun key expect acc ->
          let g = ref None in
          Store.get store key (fun x -> g := Some x);
          acc && !g = Some (Some expect))
        model true
      && Store.size store = Hashtbl.length model)

(* --- Kv_proto ------------------------------------------------------------------ *)

let test_kv_proto_roundtrips () =
  let reqs =
    [
      { Kv_proto.corr = 0; op = Kv_proto.Get "k" };
      { Kv_proto.corr = 123456; op = Kv_proto.Put ("key", String.make 200 'v') };
      { Kv_proto.corr = 7; op = Kv_proto.Del "" };
      { Kv_proto.corr = 9; op = Kv_proto.Scan "user:" };
    ]
  in
  List.iter
    (fun r ->
      match Kv_proto.decode_request (Kv_proto.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "request roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  let resps =
    [
      { Kv_proto.corr = 1; reply = Kv_proto.Value (Some "v") };
      { Kv_proto.corr = 2; reply = Kv_proto.Value None };
      { Kv_proto.corr = 3; reply = Kv_proto.Done };
      { Kv_proto.corr = 4; reply = Kv_proto.Deleted true };
      { Kv_proto.corr = 5; reply = Kv_proto.Pairs [ ("a", "1"); ("b", "2") ] };
      { Kv_proto.corr = 6; reply = Kv_proto.Failed "boom" };
    ]
  in
  List.iter
    (fun r ->
      match Kv_proto.decode_response (Kv_proto.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    resps

let test_kv_proto_rejects_garbage () =
  (match Kv_proto.decode_request "\xff\xff\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage request accepted");
  match Kv_proto.decode_response "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty response accepted"

(* --- Full stack over the smart SSD ------------------------------------------------ *)

let test_kv_app_end_to_end_and_recovery () =
  match Scenario.run ~smoke_ops:0 () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let app = outcome.Scenario.app in
    (* Write a batch through the data plane. *)
    let pending = ref 0 in
    for i = 1 to 20 do
      incr pending;
      Kv_app.local_op app
        (Kv_proto.Put (Printf.sprintf "key%02d" i, Printf.sprintf "val%02d" i))
        (fun reply ->
          (match reply with
          | Kv_proto.Done -> ()
          | _ -> Alcotest.fail "put failed");
          decr pending)
    done;
    System.run_until_idle system;
    Alcotest.(check int) "all puts done" 0 !pending;
    (* Delete a few. *)
    for i = 1 to 5 do
      Kv_app.local_op app (Kv_proto.Del (Printf.sprintf "key%02d" i)) (fun _ -> ())
    done;
    System.run_until_idle system;
    (* Relaunch the app (same log file): state must be recovered from the
       SSD-resident WAL. *)
    let relaunched = ref None in
    let pasid = System.fresh_pasid system in
    Kv_app.launch ~nic:(System.nic system 0)
      ~memctl:(Lastcpu_devices.Memctl.id (System.memctl system))
      ~pasid ~shm_va:0x8000_0000L ~user:"kvs" ~log_path:"/kv/data.log"
      ~start_device:false ()
      (fun r -> relaunched := Some r);
    System.run_until_idle system;
    (match !relaunched with
    | Some (Ok app2) ->
      Alcotest.(check bool) "records recovered" true
        (Kv_app.recovered_records app2 >= 25);
      let check key expect =
        let g = ref None in
        Kv_app.local_op app2 (Kv_proto.Get key) (fun reply -> g := Some reply);
        System.run_until_idle system;
        match (!g, expect) with
        | Some (Kv_proto.Value got), _ ->
          Alcotest.(check (option string)) key expect got
        | _ -> Alcotest.fail "get failed"
      in
      check "key03" None;
      check "key10" (Some "val10");
      check "key20" (Some "val20")
    | Some (Error e) -> Alcotest.fail e
    | None -> Alcotest.fail "relaunch never completed")

let test_kv_network_path () =
  match Scenario.run ~smoke_ops:1 () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let net = System.net system in
    let nic_addr =
      Lastcpu_devices.Smart_nic.endpoint_address (System.nic system 0)
    in
    let client = Lastcpu_net.Netsim.endpoint net ~name:"remote-client" in
    let replies = ref [] in
    Lastcpu_net.Netsim.set_receiver client (fun ~src:_ frame ->
        match Kv_proto.decode_response frame with
        | Ok r -> replies := r :: !replies
        | Error e -> Alcotest.fail e);
    let send op corr =
      Lastcpu_net.Netsim.send client ~dst:nic_addr
        (Kv_proto.encode_request { Kv_proto.corr; op })
    in
    send (Kv_proto.Put ("remote", "hello")) 1;
    System.run_until_idle system;
    send (Kv_proto.Get "remote") 2;
    System.run_until_idle system;
    send (Kv_proto.Get "absent") 3;
    System.run_until_idle system;
    let by_corr c = List.find_opt (fun r -> r.Kv_proto.corr = c) !replies in
    (match by_corr 1 with
    | Some { Kv_proto.reply = Kv_proto.Done; _ } -> ()
    | _ -> Alcotest.fail "remote put failed");
    (match by_corr 2 with
    | Some { Kv_proto.reply = Kv_proto.Value (Some "hello"); _ } -> ()
    | _ -> Alcotest.fail "remote get failed");
    match by_corr 3 with
    | Some { Kv_proto.reply = Kv_proto.Value None; _ } -> ()
    | _ -> Alcotest.fail "absent get failed"

(* Crash consistency: write a prefix of the log (simulating a crash mid
   append), recover, and check the store equals the model of the durable
   prefix. *)
let crash_recovery_prop =
  QCheck.Test.make ~name:"recovery equals model of the durable prefix" ~count:50
    QCheck.(pair (list (pair (int_bound 10) (string_of_size (Gen.return 6)))) (int_bound 1000))
    (fun (ops, cut_permille) ->
      (* Build the full log. *)
      let records =
        List.map
          (fun (k, v) ->
            let key = Printf.sprintf "k%d" k in
            if String.length v > 0 && v.[0] < 'h' then Wal.Del { key }
            else Wal.Put { key; value = v })
          ops
      in
      let full = String.concat "" (List.map Wal.encode records) in
      (* Cut it at an arbitrary byte (torn write). *)
      let cut = String.length full * min cut_permille 1000 / 1000 in
      let torn = String.sub full 0 cut in
      let durable, _ = Wal.decode_all torn in
      (* Recover a store over the torn log. *)
      let backend =
        {
          Store.append = (fun _ k -> k (Ok ()));
          read_log = (fun k -> k (Ok torn));
          reset_log = (fun k -> k (Ok ()));
          replace_log = (fun _ k -> k (Ok ()));
        }
      in
      let store = Store.create backend in
      let recovered = ref (-1) in
      Store.recover store (fun r ->
          match r with Ok n -> recovered := n | Error _ -> ());
      (* Model over the durable prefix. *)
      let model = Hashtbl.create 8 in
      List.iter
        (function
          | Wal.Put { key; value } -> Hashtbl.replace model key value
          | Wal.Del { key } -> Hashtbl.remove model key)
        durable;
      !recovered = List.length durable
      && Store.size store = Hashtbl.length model
      && Hashtbl.fold
           (fun key expect acc ->
             let g = ref None in
             Store.get store key (fun x -> g := x);
             acc && !g = Some expect)
           model true)

let test_loader_service () =
  match Scenario.run ~smoke_ops:0 () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let ssd = System.ssd system 0 in
    let dev =
      Lastcpu_devices.Smart_nic.device (System.nic system 0)
    in
    (* Discover the loader service, then upload an image. *)
    let found = ref None in
    Lastcpu_device.Device.discover dev
      ~kind:Lastcpu_proto.Types.Loader_service ~query:"" (fun r -> found := r);
    System.run_until_idle system;
    (match !found with
    | Some (id, _) ->
      Alcotest.(check int) "loader on the ssd" (Lastcpu_devices.Smart_ssd.id ssd) id
    | None -> Alcotest.fail "loader not discovered");
    let loaded = ref None in
    Lastcpu_device.Device.request dev
      ~dst:(Lastcpu_proto.Types.Device (Lastcpu_devices.Smart_ssd.id ssd))
      (Lastcpu_proto.Message.Load_image { image = "kvs-v2.bin"; bytes = 8192L })
      (fun p -> loaded := Some p);
    System.run_until_idle system;
    (match !loaded with
    | Some (Lastcpu_proto.Message.App_message { tag = "load-ok"; _ }) -> ()
    | _ -> Alcotest.fail "load failed");
    (* The image landed in the SSD's file system. *)
    let fs = Lastcpu_devices.Smart_ssd.fs ssd in
    match Lastcpu_fs.Fs.stat fs "/images/kvs-v2.bin" with
    | Ok st -> Alcotest.(check int) "image size" 8192 st.Lastcpu_fs.Fs.size
    | Error e -> Alcotest.fail (Lastcpu_fs.Fs.error_to_string e)

let test_compact_through_data_plane () =
  match Scenario.run ~smoke_ops:0 () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let app = outcome.Scenario.app in
    let store = Kv_app.store app in
    (* Churn one key so the log holds mostly dead records. *)
    for i = 1 to 30 do
      Store.put store ~key:"churn" ~value:(string_of_int i) (fun _ -> ())
    done;
    Store.put store ~key:"keep" ~value:"stable" (fun _ -> ());
    System.run_until_idle system;
    let compacted = ref None in
    Store.compact store (fun r -> compacted := Some r);
    System.run_until_idle system;
    (match !compacted with
    | Some (Ok ()) -> ()
    | _ -> Alcotest.fail "compact failed");
    (* Relaunch: recovery must see only the live records. *)
    let relaunched = ref None in
    Kv_app.launch ~nic:(System.nic system 0)
      ~memctl:(Lastcpu_devices.Memctl.id (System.memctl system))
      ~pasid:(System.fresh_pasid system)
      ~shm_va:0x8800_0000L ~user:"kvs" ~log_path:"/kv/data.log"
      ~start_device:false ()
      (fun r -> relaunched := Some r);
    System.run_until_idle system;
    match !relaunched with
    | Some (Ok app2) ->
      Alcotest.(check int) "live records only" 2 (Kv_app.recovered_records app2);
      let g = ref None in
      Kv_app.local_op app2 (Kv_proto.Get "churn") (fun r -> g := Some r);
      System.run_until_idle system;
      (match !g with
      | Some (Kv_proto.Value (Some "30")) -> ()
      | _ -> Alcotest.fail "latest value lost by compaction")
    | _ -> Alcotest.fail "relaunch failed"

let test_crashed_compaction_leaves_old_log () =
  (* A compaction that crashed after writing the sidecar but before the
     rename must not affect recovery: the live log is untouched. *)
  match Scenario.run ~smoke_ops:0 () with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let system = outcome.Scenario.system in
    let app = outcome.Scenario.app in
    for i = 1 to 8 do
      Store.put (Kv_app.store app)
        ~key:(Printf.sprintf "k%d" i) ~value:"v" (fun _ -> ())
    done;
    System.run_until_idle system;
    (* Simulate the crashed compaction: a stale sidecar full of garbage. *)
    let fs = Lastcpu_devices.Smart_ssd.fs (Lastcpu_core.System.ssd system 0) in
    (match Lastcpu_fs.Fs.create fs ~user:"kvs" "/kv/data.log.new" with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Lastcpu_fs.Fs.error_to_string e));
    (match
       Lastcpu_fs.Fs.write fs ~user:"kvs" "/kv/data.log.new" ~off:0
         "\xde\xad\xbe\xef garbage snapshot"
     with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Lastcpu_fs.Fs.error_to_string e));
    let relaunched = ref None in
    Kv_app.launch ~nic:(System.nic system 0)
      ~memctl:(Lastcpu_devices.Memctl.id (System.memctl system))
      ~pasid:(System.fresh_pasid system)
      ~shm_va:0x8C00_0000L ~user:"kvs" ~log_path:"/kv/data.log"
      ~start_device:false ()
      (fun r -> relaunched := Some r);
    System.run_until_idle system;
    (match !relaunched with
    | Some (Ok app2) ->
      Alcotest.(check int) "all records intact" 8 (Kv_app.recovered_records app2);
      (* And a fresh compaction overwrites the stale sidecar cleanly. *)
      let compacted = ref None in
      Store.compact (Kv_app.store app2) (fun r -> compacted := Some r);
      System.run_until_idle system;
      (match !compacted with
      | Some (Ok ()) -> ()
      | _ -> Alcotest.fail "compaction after crash failed")
    | _ -> Alcotest.fail "relaunch failed")

let () =
  Alcotest.run "kv"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "garbage tail" `Quick test_wal_garbage_tail;
          Alcotest.test_case "crc detects bit rot" `Quick
            test_wal_crc_detects_bit_rot;
          Alcotest.test_case "legacy records" `Quick
            test_wal_accepts_legacy_records;
          QCheck_alcotest.to_alcotest wal_prop;
        ] );
      ( "store",
        [
          Alcotest.test_case "basic ops" `Quick test_store_basic;
          Alcotest.test_case "overwrite" `Quick test_store_overwrite;
          Alcotest.test_case "recover" `Quick test_store_recover_replays_log;
          Alcotest.test_case "scan prefix" `Quick test_store_scan_prefix;
          Alcotest.test_case "compact" `Quick test_store_compact_preserves_state;
          QCheck_alcotest.to_alcotest store_model_prop;
        ] );
      ( "proto",
        [
          Alcotest.test_case "roundtrips" `Quick test_kv_proto_roundtrips;
          Alcotest.test_case "rejects garbage" `Quick test_kv_proto_rejects_garbage;
        ] );
      ( "full stack",
        [
          Alcotest.test_case "end to end + recovery" `Quick
            test_kv_app_end_to_end_and_recovery;
          Alcotest.test_case "network path" `Quick test_kv_network_path;
          Alcotest.test_case "loader service" `Quick test_loader_service;
          Alcotest.test_case "compaction" `Quick test_compact_through_data_plane;
          Alcotest.test_case "crashed compaction" `Quick
            test_crashed_compaction_leaves_old_log;
          QCheck_alcotest.to_alcotest crash_recovery_prop;
        ] );
    ]
