(* Containment tests: capability epochs and revocation, the quarantine
   state machine, re-admission handshakes, hardened decoding, free
   ownership, and frame scrubbing — the negative-path surface the rogue
   device (T17) and the protocol fuzzer lean on. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Codec = Lastcpu_proto.Codec
module Engine = Lastcpu_sim.Engine
module Snapshot = Lastcpu_sim.Snapshot
module Iommu = Lastcpu_iommu.Iommu
module Sysbus = Lastcpu_bus.Sysbus
module System = Lastcpu_core.System
module Checkpoint = Lastcpu_core.Checkpoint
module Device = Lastcpu_device.Device
module Smart_nic = Lastcpu_devices.Smart_nic
module Memctl = Lastcpu_devices.Memctl
module Dma = Lastcpu_virtio.Dma

(* --- Token.verify negative paths ----------------------------------------- *)

let key = 0xFEED_FACEL

let mk_token ?(epoch = 0) () =
  Token.mint ~epoch ~key ~issuer:1 ~subject:2 ~pasid:7 ~resource:"dram"
    ~base:0x4000L ~length:8192L ~perm:Types.perm_rw ~nonce:0xABCL ()

let test_every_field_covered () =
  let t = mk_token () in
  Alcotest.(check bool) "pristine verifies" true (Token.verify ~key t);
  let mutants =
    [
      ("issuer", { t with Token.issuer = t.Token.issuer + 1 });
      ("subject", { t with Token.subject = t.Token.subject + 1 });
      ("pasid", { t with Token.pasid = t.Token.pasid + 1 });
      ("resource", { t with Token.resource = "dram2" });
      ("base", { t with Token.base = Int64.add t.Token.base 4096L });
      ("length", { t with Token.length = Int64.add t.Token.length 4096L });
      ("perm", { t with Token.perm = Types.perm_r });
      ("nonce", { t with Token.nonce = Int64.add t.Token.nonce 1L });
      ("epoch", { t with Token.epoch = t.Token.epoch + 1 });
      ("mac", { t with Token.mac = Int64.lognot t.Token.mac });
    ]
  in
  List.iter
    (fun (field, mutant) ->
      Alcotest.(check bool)
        (field ^ " alteration detected")
        false
        (Token.verify ~key mutant))
    mutants;
  Alcotest.(check bool)
    "wrong key rejected" false
    (Token.verify ~key:(Int64.add key 1L) t)

let test_epoch_in_mac () =
  (* Same fields, different epoch: different MAC — a revoked-era token
     cannot be "promoted" by rewriting its epoch field. *)
  let t0 = mk_token ~epoch:0 () in
  let t1 = mk_token ~epoch:1 () in
  Alcotest.(check bool) "epoch-1 mint verifies" true (Token.verify ~key t1);
  Alcotest.(check bool)
    "macs differ across epochs" false
    (Int64.equal t0.Token.mac t1.Token.mac);
  Alcotest.(check bool)
    "rewritten epoch fails" false
    (Token.verify ~key { t0 with Token.epoch = 1 })

(* --- hardened decoding ---------------------------------------------------- *)

let test_decode_never_raises () =
  let good = Codec.encode_framed (Message.make ~src:3 ~dst:Types.Bus ~corr:1 Message.Heartbeat) in
  (match Codec.decode_framed_result good with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("well-formed frame rejected: " ^ e));
  let hostile =
    [
      "";
      "\x00";
      "\xde\xad\xbe\xef";
      String.sub good 0 (String.length good - 3) (* truncated trailer *);
      String.map (fun c -> Char.chr (Char.code c lxor 0x41)) good;
      String.make 64 '\xff';
    ]
  in
  List.iteri
    (fun i bytes ->
      match Codec.decode_framed_result bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "hostile frame %d decoded" i))
    hostile;
  (* Body valid, CRC valid, but payload bytes corrupted: must surface as a
     typed error from the body decoder, not an exception. *)
  let body = Codec.encode (Message.make ~src:3 ~dst:Types.Bus ~corr:1 Message.Heartbeat) in
  let corrupt = Codec.frame (body ^ "\xff\xff\xff") in
  match Codec.decode_framed_result corrupt with
  | Error _ | Ok _ -> ()

(* --- epoch revocation on the bus ------------------------------------------ *)

type raw_dev = {
  id : Types.device_id;
  inbox : Message.t list ref;
}

let attach_raw bus name =
  let iommu = Iommu.create () in
  let inbox = ref [] in
  let id =
    Sysbus.attach bus ~name ~iommu ~handler:(fun m -> inbox := m :: !inbox)
  in
  ignore iommu;
  { id; inbox }

let announce bus dev =
  Sysbus.send bus
    (Message.make ~src:dev.id ~dst:Types.Bus ~corr:0
       (Message.Device_alive { services = [] }))

let quarantine_config =
  { Sysbus.default_config with Sysbus.quarantine = Some Sysbus.default_quarantine }

(* A deterministic three-slot rig: a controller and two subject devices.
   [seed] keeps rebuilds identical for the checkpoint round-trip test. *)
let epoch_rig ?(seed = 7L) () =
  let engine = Engine.create ~seed () in
  let bus = Sysbus.create ~config:quarantine_config engine in
  let mc = attach_raw bus "mc" in
  let a = attach_raw bus "a" in
  let b = attach_raw bus "b" in
  Sysbus.register_controller bus mc.id ~resource:"dram" ~key;
  announce bus mc;
  announce bus a;
  announce bus b;
  Engine.run engine;
  (engine, bus, mc, a, b)

let map_token bus ~mc ~subject =
  Token.mint
    ~epoch:(Sysbus.current_epoch bus subject)
    ~key ~issuer:mc ~subject ~pasid:5 ~resource:"dram" ~base:0x10_0000L
    ~length:8192L ~perm:Types.perm_rw ~nonce:42L ()

let directive ~mc ~subject ~corr token =
  Message.make ~src:mc ~dst:Types.Bus ~corr
    (Message.Map_directive
       {
         device = subject;
         pasid = 5;
         va = 0x9000_0000L;
         pa = 0x10_0000L;
         bytes = 8192L;
         perm = Types.perm_rw;
         auth = token;
       })

let last_error dev =
  List.find_map
    (fun (m : Message.t) ->
      match m.Message.payload with
      | Message.Error_msg { code; detail } -> Some (code, detail)
      | _ -> None)
    !(dev.inbox)

let test_revocation_stales_tokens () =
  let engine, bus, mc, a, _b = epoch_rig () in
  let token = map_token bus ~mc:mc.id ~subject:a.id in
  Sysbus.send bus (directive ~mc:mc.id ~subject:a.id ~corr:1 token);
  Engine.run engine;
  Alcotest.(check int) "no stale uses yet" 0 (Sysbus.stale_tokens bus);
  Alcotest.(check int) "epoch starts at 0" 0 (Sysbus.current_epoch bus a.id);
  Sysbus.revoke bus a.id;
  Alcotest.(check int) "epoch bumped" 1 (Sysbus.current_epoch bus a.id);
  Alcotest.(check int) "revocation counted" 1 (Sysbus.revocations bus);
  (* Replay of the pre-revocation token: genuine MAC, dead generation. *)
  mc.inbox := [];
  Sysbus.send bus (directive ~mc:mc.id ~subject:a.id ~corr:2 token);
  Engine.run engine;
  Alcotest.(check int) "stale use counted" 1 (Sysbus.stale_tokens bus);
  (match last_error mc with
  | Some (Types.E_bad_token, detail) ->
    Alcotest.(check bool)
      "NACK names the epoch" true
      (String.length detail > 0)
  | _ -> Alcotest.fail "stale replay was not NACKed E_bad_token");
  (* A token minted under the current epoch verifies again. *)
  let fresh = map_token bus ~mc:mc.id ~subject:a.id in
  mc.inbox := [];
  Sysbus.send bus (directive ~mc:mc.id ~subject:a.id ~corr:3 fresh);
  Engine.run engine;
  Alcotest.(check int) "no new stale use" 1 (Sysbus.stale_tokens bus);
  match last_error mc with
  | None -> ()
  | Some (_, detail) -> Alcotest.fail ("fresh-epoch directive denied: " ^ detail)

let test_wrong_wielder_rejected () =
  (* The same genuine token in the wrong hands: a Map_directive is
     issuer-wielded, so a subject replaying it is rejected; a Grant_request
     is subject-wielded, so a third device replaying it is rejected. *)
  let engine, bus, mc, a, b = epoch_rig () in
  let token = map_token bus ~mc:mc.id ~subject:a.id in
  Sysbus.send bus (directive ~mc:a.id ~subject:a.id ~corr:4 token);
  Engine.run engine;
  (match last_error a with
  | Some (Types.E_bad_token, _) -> ()
  | _ -> Alcotest.fail "subject-wielded map directive accepted");
  Sysbus.send bus
    (Message.make ~src:b.id ~dst:Types.Bus ~corr:5
       (Message.Grant_request
          {
            to_device = b.id;
            pasid = 5;
            va = 0x9000_0000L;
            bytes = 8192L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  match last_error b with
  | Some (Types.E_bad_token, _) -> ()
  | _ -> Alcotest.fail "third-party grant with stolen token accepted"

let test_epoch_survives_checkpoint () =
  (* Revocation must hold across a snapshot/restore: the epoch table rides
     the bus's snapshot, so a restored process still rejects the old era. *)
  let path = Filename.temp_file "lastcpu-epoch" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Snapshot.previous_generation path ])
    (fun () ->
      let engine, bus, mc, a, _b = epoch_rig () in
      let token = map_token bus ~mc:mc.id ~subject:a.id in
      Sysbus.revoke bus a.id;
      Checkpoint.save ~path ~tag:"epoch-test" (Checkpoint.Single engine);
      (* Fresh identical rig, then overlay the snapshot. *)
      let engine2, bus2, mc2, a2, _b2 = epoch_rig () in
      (match
         Checkpoint.restore ~path ~tag:"epoch-test" (Checkpoint.Single engine2)
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("restore failed: " ^ e));
      Alcotest.(check int)
        "epoch restored" 1
        (Sysbus.current_epoch bus2 a2.id);
      Sysbus.send bus2 (directive ~mc:mc2.id ~subject:a2.id ~corr:6 token);
      Engine.run engine2;
      Alcotest.(check int)
        "stale replay rejected after restore" 1
        (Sysbus.stale_tokens bus2))

(* --- quarantine state machine --------------------------------------------- *)

let test_scoring_walks_trust_states () =
  let engine, bus, _mc, a, b = epoch_rig () in
  Alcotest.(check bool)
    "starts trusted" true
    (Sysbus.trust_of bus a.id = Sysbus.Trusted);
  (* Malformed frames score 2 each; suspect at 4, quarantined at 10. *)
  let garbage () =
    Sysbus.send_raw bus ~src:a.id "\xde\xad";
    Engine.run engine
  in
  garbage ();
  garbage ();
  Alcotest.(check bool)
    "suspect at threshold" true
    (Sysbus.trust_of bus a.id = Sysbus.Suspect);
  Alcotest.(check int) "malformed counted" 2 (Sysbus.malformed_frames_of bus a.id);
  garbage ();
  garbage ();
  garbage ();
  Alcotest.(check bool)
    "quarantined at threshold" true
    (Sysbus.trust_of bus a.id = Sysbus.Quarantined);
  Alcotest.(check int) "quarantine counted" 1 (Sysbus.quarantines bus);
  Alcotest.(check bool) "fenced from routing" false (Sysbus.is_live bus a.id);
  (* Frames from the quarantined slot die at the fence — even well-formed
     ones, even re-announces. *)
  b.inbox := [];
  Sysbus.send_raw bus ~src:a.id
    (Codec.encode_framed
       (Message.make ~src:a.id ~dst:(Types.Device b.id) ~corr:9
          Message.Heartbeat));
  announce bus a;
  Engine.run engine;
  Alcotest.(check int) "unicast fenced" 0 (List.length !(b.inbox));
  Alcotest.(check bool)
    "self-announce cannot lift quarantine" false
    (Sysbus.is_live bus a.id);
  Alcotest.(check bool) "fence counted" true (Sysbus.messages_fenced bus > 0)

let test_release_requires_reset_handshake () =
  let engine, bus, _mc, a, _b = epoch_rig () in
  for _ = 1 to 5 do
    Sysbus.send_raw bus ~src:a.id "\xde\xad"
  done;
  Engine.run engine;
  Alcotest.(check bool)
    "quarantined" true
    (Sysbus.trust_of bus a.id = Sysbus.Quarantined);
  a.inbox := [];
  Sysbus.release_quarantine bus a.id;
  (* Parole: reset line delivered, slot on parole but NOT live yet. *)
  Alcotest.(check bool)
    "reset line delivered" true
    (List.exists
       (fun (m : Message.t) -> m.Message.payload = Message.Reset_device)
       !(a.inbox));
  Alcotest.(check bool)
    "on parole (suspect)" true
    (Sysbus.trust_of bus a.id = Sysbus.Suspect);
  Alcotest.(check bool) "not live before re-announce" false (Sysbus.is_live bus a.id);
  Alcotest.(check int) "score cleared" 0 (Sysbus.misbehavior_score bus a.id);
  announce bus a;
  Engine.run engine;
  Alcotest.(check bool) "live after re-announce" true (Sysbus.is_live bus a.id)

let test_sweep_death_needs_reannounce () =
  (* A device swept dead by heartbeat timeout must not resurrect on a bare
     heartbeat; only the Device_alive handshake re-admits it. *)
  let engine = Engine.create ~seed:7L () in
  let config =
    { Sysbus.default_config with Sysbus.heartbeat_timeout_ns = 1_000_000L }
  in
  let bus = Sysbus.create ~config engine in
  let a = attach_raw bus "a" in
  announce bus a;
  Engine.run_until_quiescent engine;
  Alcotest.(check bool) "live after boot" true (Sysbus.is_live bus a.id);
  (* Fall silent past the timeout; a dummy event pulls virtual time (and
     the static sweep) forward. *)
  Engine.schedule engine ~delay:2_500_000L (fun () -> ());
  Engine.run_until_quiescent engine;
  Alcotest.(check bool) "swept dead" false (Sysbus.is_live bus a.id);
  Sysbus.send bus
    (Message.make ~src:a.id ~dst:Types.Bus ~corr:0 Message.Heartbeat);
  Engine.run_until_quiescent engine;
  Alcotest.(check bool)
    "bare heartbeat does not resurrect" false
    (Sysbus.is_live bus a.id);
  announce bus a;
  Engine.run_until_quiescent engine;
  Alcotest.(check bool) "re-announce re-admits" true (Sysbus.is_live bus a.id)

let test_spoofed_source_dropped () =
  let engine, bus, _mc, a, b = epoch_rig () in
  b.inbox := [];
  (* A frame on a's physical lane claiming b as its source: dropped and
     scored as spoofing (weight 4 -> straight to suspect). *)
  Sysbus.send_raw bus ~src:a.id
    (Codec.encode_framed
       (Message.make ~src:b.id ~dst:(Types.Device b.id) ~corr:1
          Message.Heartbeat));
  Engine.run engine;
  Alcotest.(check int) "spoofed frame not delivered" 0 (List.length !(b.inbox));
  Alcotest.(check bool)
    "spoof scored to suspect" true
    (Sysbus.trust_of bus a.id = Sysbus.Suspect)

let test_unknown_device_ids_nack () =
  (* Decoded hostile frames can name any device id; every dereference must
     NACK instead of crashing the bus (a bug the fuzzer actually found). *)
  let engine, bus, mc, a, _b = epoch_rig () in
  a.inbox := [];
  Sysbus.send_raw bus ~src:a.id
    (Codec.encode_framed
       (Message.make ~src:a.id ~dst:(Types.Device 57) ~corr:2 Message.Heartbeat));
  Engine.run engine;
  (match last_error a with
  | Some (Types.E_bad_address, _) -> ()
  | _ -> Alcotest.fail "unknown routing target not NACKed");
  (* Map_directive whose (token-covered) target device does not exist. *)
  let ghost =
    Token.mint ~key ~issuer:mc.id ~subject:57 ~pasid:5 ~resource:"dram"
      ~base:0x10_0000L ~length:4096L ~perm:Types.perm_rw ~nonce:3L ()
  in
  mc.inbox := [];
  Sysbus.send bus
    (Message.make ~src:mc.id ~dst:Types.Bus ~corr:3
       (Message.Map_directive
          {
            device = 57;
            pasid = 5;
            va = 0L;
            pa = 0x10_0000L;
            bytes = 4096L;
            perm = Types.perm_rw;
            auth = ghost;
          }));
  Engine.run engine;
  match last_error mc with
  | Some (Types.E_bad_address, _) -> ()
  | _ -> Alcotest.fail "map directive to unknown device not NACKed"

(* --- revocation cascade + memory hygiene (full system) -------------------- *)

let booted_quarantine () =
  let spec =
    {
      System.default_spec with
      System.nic_count = 2;
      quarantine = Some Sysbus.default_quarantine;
    }
  in
  let system = System.build ~spec () in
  match System.boot system with
  | Ok () -> system
  | Error e -> Alcotest.fail e

let test_quarantine_revokes_memctl_grants () =
  let system = booted_quarantine () in
  let bus = System.bus system in
  let mc = System.memctl system in
  let rogue = Smart_nic.device (System.nic system 1) in
  let rogue_id = Device.id rogue in
  let pasid = System.fresh_pasid system in
  let ok = ref false in
  Device.alloc rogue ~memctl:(Memctl.id mc) ~pasid ~va:0x7000_0000L
    ~bytes:8192L ~perm:Types.perm_rw (fun r ->
      ok := Result.is_ok r);
  System.run_until_idle system;
  Alcotest.(check bool) "allocation granted" true !ok;
  Alcotest.(check bool)
    "allocation recorded" true
    (Memctl.allocations_of mc ~pasid <> []);
  for _ = 1 to 5 do
    Sysbus.send_raw bus ~src:rogue_id "\xbad"
  done;
  System.run_until_idle system;
  Alcotest.(check bool)
    "quarantined" true
    (Sysbus.trust_of bus rogue_id = Sysbus.Quarantined);
  Alcotest.(check (list (pair int64 int64)))
    "memctl tore down the rogue's allocations" []
    (Memctl.allocations_of mc ~pasid);
  Alcotest.(check (list int))
    "iommu cleared" []
    (Iommu.pasids (Sysbus.iommu_of bus rogue_id))

let test_free_requires_ownership () =
  let system = booted_quarantine () in
  let bus = System.bus system in
  let mc = System.memctl system in
  let owner = Smart_nic.device (System.nic system 0) in
  let thief_id = Device.id (Smart_nic.device (System.nic system 1)) in
  let pasid = System.fresh_pasid system in
  Device.alloc owner ~memctl:(Memctl.id mc) ~pasid ~va:0x7100_0000L
    ~bytes:4096L ~perm:Types.perm_rw (fun _ -> ());
  System.run_until_idle system;
  Alcotest.(check int) "one allocation" 1
    (List.length (Memctl.allocations_of mc ~pasid));
  (* The second NIC tries to free the first NIC's region. *)
  Sysbus.send bus
    (Message.make ~src:thief_id ~dst:(Types.Device (Memctl.id mc)) ~corr:404
       (Message.Free_request { pasid; va = 0x7100_0000L; bytes = 4096L }));
  System.run_until_idle system;
  Alcotest.(check int) "cross-tenant free denied" 1
    (List.length (Memctl.allocations_of mc ~pasid));
  (* The owner's own free still works. *)
  let freed = ref false in
  Device.free owner ~memctl:(Memctl.id mc) ~pasid ~va:0x7100_0000L
    ~bytes:4096L (fun r -> freed := Result.is_ok r);
  System.run_until_idle system;
  Alcotest.(check bool) "owner free succeeds" true !freed;
  Alcotest.(check (list (pair int64 int64)))
    "allocation gone" []
    (Memctl.allocations_of mc ~pasid)

let test_freed_frames_scrubbed () =
  (* Free, then re-allocate the same physical frame under another tenant:
     no residual bytes may leak across. The buddy allocator reuses the
     just-freed block, so the second allocation lands on the same frame. *)
  let system = booted_quarantine () in
  let bus = System.bus system in
  let mc = System.memctl system in
  let dev = Smart_nic.device (System.nic system 0) in
  let dev_id = Device.id dev in
  let pasid_a = System.fresh_pasid system in
  let pasid_b = System.fresh_pasid system in
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:pasid_a ~va:0x7200_0000L
    ~bytes:4096L ~perm:Types.perm_rw (fun _ -> ());
  System.run_until_idle system;
  let pa_a =
    match
      Iommu.probe (Sysbus.iommu_of bus dev_id) ~pasid:pasid_a ~va:0x7200_0000L
    with
    | Some pa -> pa
    | None -> Alcotest.fail "tenant A region not mapped"
  in
  let dma_a = Device.dma dev ~pasid:pasid_a in
  Dma.write_bytes dma_a 0x7200_0000L (String.make 4096 'S');
  Device.free dev ~memctl:(Memctl.id mc) ~pasid:pasid_a ~va:0x7200_0000L
    ~bytes:4096L (fun _ -> ());
  System.run_until_idle system;
  Device.alloc dev ~memctl:(Memctl.id mc) ~pasid:pasid_b ~va:0x7300_0000L
    ~bytes:4096L ~perm:Types.perm_rw (fun _ -> ());
  System.run_until_idle system;
  let pa_b =
    match
      Iommu.probe (Sysbus.iommu_of bus dev_id) ~pasid:pasid_b ~va:0x7300_0000L
    with
    | Some pa -> pa
    | None -> Alcotest.fail "tenant B region not mapped"
  in
  Alcotest.(check int64) "frame reused (LIFO buddy)" pa_a pa_b;
  let dma_b = Device.dma dev ~pasid:pasid_b in
  let got = Dma.read_bytes dma_b 0x7300_0000L 4096 in
  Alcotest.(check bool)
    "no residual bytes from tenant A" true
    (String.for_all (fun c -> c = '\000') got)

let () =
  Alcotest.run "containment"
    [
      ( "token negative paths",
        [
          Alcotest.test_case "every field covered" `Quick test_every_field_covered;
          Alcotest.test_case "epoch under the mac" `Quick test_epoch_in_mac;
        ] );
      ( "hardened decoding",
        [ Alcotest.test_case "never raises" `Quick test_decode_never_raises ] );
      ( "epochs and revocation",
        [
          Alcotest.test_case "revocation stales tokens" `Quick
            test_revocation_stales_tokens;
          Alcotest.test_case "wrong wielder" `Quick test_wrong_wielder_rejected;
          Alcotest.test_case "epoch survives checkpoint" `Quick
            test_epoch_survives_checkpoint;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "trust walk" `Quick test_scoring_walks_trust_states;
          Alcotest.test_case "release handshake" `Quick
            test_release_requires_reset_handshake;
          Alcotest.test_case "no silent resurrection" `Quick
            test_sweep_death_needs_reannounce;
          Alcotest.test_case "spoof dropped" `Quick test_spoofed_source_dropped;
          Alcotest.test_case "unknown ids NACK" `Quick
            test_unknown_device_ids_nack;
        ] );
      ( "cascade and hygiene",
        [
          Alcotest.test_case "revocation cascade" `Quick
            test_quarantine_revokes_memctl_grants;
          Alcotest.test_case "free ownership" `Quick test_free_requires_ownership;
          Alcotest.test_case "frames scrubbed" `Quick test_freed_frames_scrubbed;
        ] );
    ]
