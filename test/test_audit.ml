(* lastcpu-audit tests.

   Golden fixtures under audit_fixtures/ are typechecked in-process
   (against the compiler's stdlib; local stubs stand in for repo modules,
   which the suffix-based path matching treats identically) and fed
   through the same inventory + findings pipeline audit_main runs over
   .cmt files. Alongside the static goldens: the shared-suppressions
   contract between the two drivers, the grouped rule-line grammar, the
   dynamic ownership sanitizer, and round-trip regressions pinning the
   source fixes the first audit run forced (pubsub snapshot hook, fuzz
   stream-position savers). *)

module Engine = Lastcpu_sim.Engine
module Temporal = Lastcpu_sim.Temporal
module Ownership = Lastcpu_sim.Ownership
module Snapshot = Lastcpu_sim.Snapshot
module Fuzz = Lastcpu_sim.Fuzz
module System = Lastcpu_core.System
module Netsim = Lastcpu_net.Netsim
module Smart_nic = Lastcpu_devices.Smart_nic
module Pubsub = Lastcpu_apps.Pubsub
module Proto = Lastcpu_apps.Pubsub_proto

let fixture name = Filename.concat "audit_fixtures" name
let modname name = String.capitalize_ascii (Filename.remove_extension name)

let inv name =
  let path = fixture name in
  match
    Audit_core.inventory_of_string ~path ~modname:(modname name)
      (Lint_core.read_file path)
  with
  | Ok i -> i
  | Error e -> Alcotest.fail e

(* Grouped rule line: one line configures both audit rules (and pins the
   comma-separated grammar lint.rules itself now uses). *)
let both_config = Lint_core.parse_rules "D007,D008 scope=audit_fixtures\n"
let d007_config = Lint_core.parse_rules "D007 scope=audit_fixtures\n"

let keys fs =
  List.map
    (fun f -> (f.Lint_core.rule, f.Lint_core.line, f.Lint_core.binding))
    fs

let finding = Alcotest.(list (triple string int string))

let audit ?(config = both_config) names =
  Audit_core.findings ~config (List.map inv names)

(* --- golden fixtures --------------------------------------------------------- *)

let test_racy () =
  (* table/counter flag on their type; next_id's type is a bare arrow, so
     only the hidden-state walk of its initialiser can catch it. *)
  Alcotest.check finding "racy_global.ml"
    [ ("D007", 4, "table"); ("D007", 5, "counter"); ("D007", 7, "next_id") ]
    (keys (audit [ "racy_global.ml" ]))

let test_per_shard_clean () =
  Alcotest.check finding "per_shard.ml" []
    (keys (audit ~config:d007_config [ "per_shard.ml" ]))

let test_unregistered () =
  (* Inner.t is directly mutable; the wrapper t reaches it through a
     field, so the whole-program fixpoint must flag both. *)
  Alcotest.check finding "unregistered.ml"
    [ ("D008", 5, "Inner.t"); ("D008", 8, "t") ]
    (keys (audit [ "unregistered.ml" ]))

let test_hooked_clean () =
  Alcotest.check finding "hooked.ml" [] (keys (audit [ "hooked.ml" ]))

(* --- suppressions ------------------------------------------------------------ *)

let test_suppression_honored () =
  let supp =
    Lint_core.parse_suppressions
      "D007 audit_fixtures/racy_global.ml table -- fixture waiver\n"
  in
  let un, stale =
    Lint_core.apply_suppressions ~known_rules:Audit_core.audit_rules supp
      (audit [ "racy_global.ml" ])
  in
  Alcotest.check finding "others still reported"
    [ ("D007", 5, "counter"); ("D007", 7, "next_id") ]
    (keys un);
  Alcotest.(check int) "no stale" 0 (List.length stale)

let test_suppression_stale () =
  let supp =
    Lint_core.parse_suppressions
      "D008 audit_fixtures/per_shard.ml t -- matches nothing\n"
  in
  let _, stale =
    Lint_core.apply_suppressions ~known_rules:Audit_core.audit_rules supp
      (audit [ "racy_global.ml" ])
  in
  Alcotest.(check int) "stale audit entry is an error" 1 (List.length stale)

let test_cross_driver_staleness () =
  (* The drivers share one suppressions file: an unmatched D004 entry is
     lint_main's business, so the audit pass must NOT call it stale — but
     a driver given no known_rules judges every entry. *)
  let supp =
    Lint_core.parse_suppressions "D004 lib/x.ml y -- lint-owned entry\n"
  in
  let _, stale_audit =
    Lint_core.apply_suppressions ~known_rules:Audit_core.audit_rules supp []
  in
  Alcotest.(check int) "foreign entry ignored" 0 (List.length stale_audit);
  let supp = Lint_core.parse_suppressions "D004 lib/x.ml y -- entry\n" in
  let _, stale_all = Lint_core.apply_suppressions supp [] in
  Alcotest.(check int) "unfiltered judges all" 1 (List.length stale_all)

(* --- config grammar ----------------------------------------------------------- *)

let test_grouped_rule_line () =
  let config = Lint_core.parse_rules "D001,D004 scope=x,y exempt=x/a.ml\n" in
  Alcotest.(check (list string))
    "group expands to one config per id" [ "D001"; "D004" ]
    (List.map (fun r -> r.Lint_core.id) config);
  List.iter
    (fun r ->
      Alcotest.(check (list string)) "shared scopes" [ "x"; "y" ] r.Lint_core.scopes;
      Alcotest.(check (list string))
        "shared exempt" [ "x/a.ml" ] r.Lint_core.exempt)
    config

(* --- dynamic ownership sanitizer ---------------------------------------------- *)

let test_ownership_violation () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let _t = Temporal.create ~lookahead:100L [| e0; e1 |] in
  Ownership.enable ();
  Fun.protect ~finally:Ownership.disable @@ fun () ->
  let before = Ownership.checks () in
  (* Scheduling onto your own shard's engine is the contract... *)
  Ownership.with_shard 0 (fun () ->
      Engine.schedule_at e0 ~time:(Int64.add (Engine.now e0) 1L) (fun () -> ()));
  Alcotest.(check bool) "guarded access counted" true
    (Ownership.checks () > before);
  (* ...scheduling onto another shard's engine from a parallel window is
     the race the sanitizer exists to catch. *)
  match
    Ownership.with_shard 1 (fun () ->
        Engine.schedule_at e0 ~time:(Int64.add (Engine.now e0) 1L) (fun () -> ()))
  with
  | () -> Alcotest.fail "cross-shard schedule must raise Violation"
  | exception Ownership.Violation _ -> ()

let test_ownership_clean_run () =
  (* Two shards trading boundary messages through the blessed path
     (Temporal.post, flushed at quantum edges) run violation-free under
     checking, and the run exercises the guards (checks advance). *)
  let e0 = Engine.create () and e1 = Engine.create () in
  let t = Temporal.create ~lookahead:50L [| e0; e1 |] in
  let hits = ref 0 in
  let rec ping e n =
    Engine.schedule e ~delay:10L (fun () ->
        incr hits;
        if n > 0 then begin
          ping e (n - 1);
          let src = if e == e0 then 0 else 1 in
          Temporal.post t ~src ~dst:(1 - src) (fun () -> incr hits)
        end)
  in
  ping e0 5;
  ping e1 5;
  Ownership.enable ();
  Fun.protect ~finally:Ownership.disable (fun () -> Temporal.run t);
  Alcotest.(check int) "all events fired" 22 !hits;
  Alcotest.(check bool) "guards exercised" true (Ownership.checks () > 0)

(* --- regressions for the audit-forced fixes ----------------------------------- *)

(* D008 fix: the pubsub broker's subscription/retained tables now ride a
   snapshot hook; a restore must bring back every subscriber and retained
   topic, not just reachability. *)
let test_pubsub_snapshot_roundtrip () =
  let system = System.build () in
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  let nic = System.nic system 0 in
  let app = Pubsub.launch ~nic ~start_device:false () in
  let broker = Smart_nic.endpoint_address nic in
  let client name =
    let ep = Netsim.endpoint (System.net system) ~name in
    Netsim.set_receiver ep (fun ~src:_ _ -> ());
    ep
  in
  let send ep req = Netsim.send ep ~dst:broker (Proto.encode_request req) in
  let alice = client "alice" and bob = client "bob" in
  send alice { Proto.corr = 1; op = Proto.Subscribe "news/*" };
  send bob { Proto.corr = 2; op = Proto.Subscribe "news/tech" };
  send bob
    {
      Proto.corr = 3;
      op = Proto.Publish { topic = "news/tech"; payload = "v1"; retain = true };
    };
  System.run_until_idle system;
  let subs = Pubsub.subscriptions app in
  let retained = Pubsub.topics_retained app in
  let published = Pubsub.published app in
  Alcotest.(check int) "two subs live" 2 subs;
  let name, save, restore =
    List.find
      (fun (name, _, _) -> String.length name > 7 && String.sub name 0 7 = "pubsub:")
      (Engine.snapshot_hooks (System.engine system))
  in
  Alcotest.(check bool) "hook registered" true (String.length name > 7);
  let bytes = save () in
  (* Perturb the broker past the checkpoint... *)
  send alice { Proto.corr = 4; op = Proto.Unsubscribe "news/*" };
  send bob
    {
      Proto.corr = 5;
      op = Proto.Publish { topic = "other"; payload = "v2"; retain = true };
    };
  System.run_until_idle system;
  Alcotest.(check bool) "state drifted" true (Pubsub.subscriptions app <> subs);
  (* ...and roll it back. *)
  restore bytes;
  Alcotest.(check int) "subs restored" subs (Pubsub.subscriptions app);
  Alcotest.(check int) "retained restored" retained (Pubsub.topics_retained app);
  Alcotest.(check int) "counters restored" published (Pubsub.published app)

(* D008 fix: a restored fuzz mutator continues the exact mutant sequence
   of the uninterrupted campaign. *)
let test_fuzz_save_restore () =
  let a = Fuzz.create ~seed:7L in
  let _ = Fuzz.mutate_int a 5 in
  let _ = Fuzz.mutate_string a "frame" in
  let w = Snapshot.W.create () in
  Fuzz.save w a;
  let tail_a = List.init 32 (fun _ -> Fuzz.mutate_int64 a 0x1234L) in
  let b = Fuzz.create ~seed:999L in
  let r = Snapshot.R.of_string (Snapshot.W.contents w) in
  Fuzz.restore r b;
  let tail_b = List.init 32 (fun _ -> Fuzz.mutate_int64 b 0x1234L) in
  Alcotest.(check (list int64)) "resumed campaign continues the sequence"
    tail_a tail_b

let () =
  Alcotest.run "audit"
    [
      ( "golden",
        [
          Alcotest.test_case "racy global flagged" `Quick test_racy;
          Alcotest.test_case "per-shard clone clean" `Quick test_per_shard_clean;
          Alcotest.test_case "unregistered state flagged" `Quick
            test_unregistered;
          Alcotest.test_case "hooked subsystem clean" `Quick test_hooked_clean;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "honored site-by-site" `Quick
            test_suppression_honored;
          Alcotest.test_case "stale is an error" `Quick test_suppression_stale;
          Alcotest.test_case "cross-driver ownership" `Quick
            test_cross_driver_staleness;
        ] );
      ( "config",
        [ Alcotest.test_case "grouped rule line" `Quick test_grouped_rule_line ] );
      ( "ownership",
        [
          Alcotest.test_case "cross-shard access raises" `Quick
            test_ownership_violation;
          Alcotest.test_case "blessed paths run clean" `Quick
            test_ownership_clean_run;
        ] );
      ( "fixes",
        [
          Alcotest.test_case "pubsub snapshot roundtrip" `Quick
            test_pubsub_snapshot_roundtrip;
          Alcotest.test_case "fuzz campaign resume" `Quick
            test_fuzz_save_restore;
        ] );
    ]
