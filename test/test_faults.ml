(* Fault-injection layer: zero-plan invariance, seed determinism, wire CRC,
   NAND fault surfacing, request retry/backoff, late-response hygiene,
   doorbell accounting, crash→revive rejoin, and the full chaos soak
   (T13) with provider failover. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Codec = Lastcpu_proto.Codec
module Wire = Lastcpu_proto.Wire
module Engine = Lastcpu_sim.Engine
module Metrics = Lastcpu_sim.Metrics
module Faults = Lastcpu_sim.Faults
module Physmem = Lastcpu_mem.Physmem
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Nand = Lastcpu_flash.Nand
module Experiments = Lastcpu_core.Experiments

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A chatty plan (no crashes) for the small-rig tests: high enough rates
   that a short run reliably exercises every message-fault path. *)
let chatty =
  {
    Faults.default_chaos with
    Faults.msg_loss = 0.1;
    msg_dup = 0.05;
    msg_delay = 0.2;
    msg_corrupt = 0.05;
    crashes = [];
  }

(* --- zero plan is inert ------------------------------------------------------ *)

let test_zero_plan_inert () =
  let engine = Engine.create () in
  let faults = Engine.faults engine in
  checkb "inactive" false (Faults.active faults);
  (* No counters registered: the registry is indistinguishable from a
     build without the fault layer. *)
  let snapshot = Metrics.snapshot (Engine.metrics engine) in
  checkb "no faults actor" true
    (List.for_all (fun (actor, _, _) -> actor <> "faults") snapshot)

(* --- seed determinism -------------------------------------------------------- *)

(* Two devices chattering over a lossy bus with retries; returns the final
   registry snapshot. *)
let lossy_chatter seed =
  let engine = Engine.create ~seed ~fault_plan:chatty () in
  let bus = Sysbus.create engine in
  let mem = Physmem.create () in
  let a = Device.create bus ~mem ~name:"a" () in
  let b = Device.create bus ~mem ~name:"b" () in
  Device.set_app_handler b (fun msg ->
      match msg.Message.payload with
      | Message.App_message _ ->
        Device.reply b ~to_:msg.Message.src ~corr:msg.Message.corr
          (Message.App_message { tag = "r"; body = "" })
      | _ -> ());
  Device.start a;
  Device.start b;
  Engine.run engine;
  let done_ = ref false in
  let rec send i =
    if i = 200 then done_ := true
    else
      Device.request a ~timeout:50_000L ~retries:6
        ~dst:(Types.Device (Device.id b))
        (Message.App_message { tag = "q"; body = string_of_int i })
        (fun _ -> send (i + 1))
  in
  send 0;
  Engine.run engine;
  checkb "chatter completed" true !done_;
  Metrics.to_json (Engine.metrics engine)

let test_same_seed_same_faults () =
  let s1 = lossy_chatter 1234L in
  let s2 = lossy_chatter 1234L in
  Alcotest.(check string) "byte-identical snapshots" s1 s2

let test_faults_actually_fire () =
  let engine = Engine.create ~seed:1234L ~fault_plan:chatty () in
  let bus = Sysbus.create engine in
  let mem = Physmem.create () in
  let a = Device.create bus ~mem ~name:"a" () in
  let b = Device.create bus ~mem ~name:"b" () in
  Device.set_app_handler b (fun msg ->
      match msg.Message.payload with
      | Message.App_message _ ->
        Device.reply b ~to_:msg.Message.src ~corr:msg.Message.corr
          (Message.App_message { tag = "r"; body = "" })
      | _ -> ());
  Device.start a;
  Device.start b;
  Engine.run engine;
  let rec send i =
    if i < 200 then
      Device.request a ~timeout:50_000L ~retries:6
        ~dst:(Types.Device (Device.id b))
        (Message.App_message { tag = "q"; body = string_of_int i })
        (fun _ -> send (i + 1))
  in
  send 0;
  Engine.run engine;
  let m = Engine.metrics engine in
  let read name = Metrics.counter_read m ~actor:"faults" ~name in
  checkb "messages lost" true (read "messages_lost" > 0);
  checkb "messages duplicated" true (read "messages_duplicated" > 0);
  checkb "messages delayed" true (read "messages_delayed" > 0);
  checkb "messages corrupted" true (read "messages_corrupted" > 0);
  (* Each lost/corrupted delivery shows up as a device-level retry. *)
  checkb "retries fired" true (Device.request_retries a > 0)

(* --- framed codec (wire CRC) ------------------------------------------------- *)

let test_framed_roundtrip () =
  let msg =
    Message.make ~src:3 ~dst:(Types.Device 5) ~corr:77
      (Message.App_message { tag = "hello"; body = "payload-bytes" })
  in
  let framed = Codec.encode_framed msg in
  match Codec.decode_framed framed with
  | m -> checkb "roundtrip" true (m = msg)
  | exception Wire.Malformed e -> Alcotest.fail ("framed decode: " ^ e)

let test_framed_detects_any_bit_flip () =
  let msg =
    Message.make ~src:1 ~dst:(Types.Device 2) ~corr:9
      (Message.App_message { tag = "t"; body = "abcdef" })
  in
  let framed = Codec.encode_framed msg in
  for bit = 0 to (String.length framed * 8) - 1 do
    let b = Bytes.of_string framed in
    let byte = bit / 8 in
    Bytes.set b byte
      (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
    match Codec.decode_framed (Bytes.to_string b) with
    | exception Wire.Malformed _ -> ()
    | m ->
      if m = msg then
        Alcotest.fail (Printf.sprintf "bit flip %d undetected" bit)
  done

(* --- NAND fault surfacing ---------------------------------------------------- *)

let nand_with plan =
  let m = Metrics.create () in
  let faults = Faults.create ~plan ~seed:7L m in
  (Nand.create ~faults (), m)

let page = String.make 4096 'x'

let test_nand_transient_read_failure () =
  let nand, m =
    nand_with { Faults.zero with Faults.nand_read_fail = 1.0 }
  in
  (match Nand.program_page nand ~block:0 ~page:0 page with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("program: " ^ e));
  (match Nand.read_page nand ~block:0 ~page:0 with
  | Error e -> Alcotest.(check string) "io error" "transient read failure" e
  | Ok _ -> Alcotest.fail "fault not injected");
  checkb "counted" true
    (Metrics.counter_read m ~actor:"faults" ~name:"nand_read_errors" > 0)

let test_nand_bit_flip_caught_by_page_crc () =
  let nand, m = nand_with { Faults.zero with Faults.nand_bit_flip = 1.0 } in
  (match Nand.program_page nand ~block:0 ~page:0 page with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("program: " ^ e));
  (match Nand.read_page nand ~block:0 ~page:0 with
  | Error e -> Alcotest.(check string) "ecc error" "uncorrectable bit error (ECC)" e
  | Ok _ -> Alcotest.fail "flip not injected");
  checkb "counted" true
    (Metrics.counter_read m ~actor:"faults" ~name:"nand_bit_flips" > 0)

(* --- retry / give-up / late responses ---------------------------------------- *)

let rig ?(fault_plan = Faults.zero) ?(heartbeat_timeout_ns = 0L) () =
  let engine = Engine.create ~fault_plan () in
  let bus =
    Sysbus.create
      ~config:
        { Sysbus.default_config with enable_tokens = false; heartbeat_timeout_ns }
      engine
  in
  let mem = Physmem.create () in
  (engine, bus, mem)

let test_request_retries_then_gives_up () =
  let engine, bus, mem = rig () in
  let a = Device.create bus ~mem ~name:"a" () in
  let b = Device.create bus ~mem ~name:"b" () in
  (* b has no app handler: requests vanish silently. *)
  Device.start a;
  Device.start b;
  Engine.run engine;
  let result = ref None in
  Device.request a ~timeout:10_000L ~retries:3
    ~dst:(Types.Device (Device.id b))
    (Message.App_message { tag = "q"; body = "" })
    (fun payload -> result := Some payload);
  Engine.run engine;
  check "retries counted" 3 (Device.request_retries a);
  check "gave up once" 1 (Device.requests_gave_up a);
  match !result with
  | Some (Message.Error_msg { code = Types.E_busy; _ }) -> ()
  | Some _ -> Alcotest.fail "wrong give-up payload"
  | None -> Alcotest.fail "continuation never ran"

let test_late_response_swallowed () =
  let engine, bus, mem = rig () in
  let a = Device.create bus ~mem ~name:"a" () in
  let b = Device.create bus ~mem ~name:"b" () in
  (* b answers, but far too late. *)
  Device.set_app_handler b (fun msg ->
      match msg.Message.payload with
      | Message.App_message _ ->
        let src = msg.Message.src and corr = msg.Message.corr in
        Engine.schedule engine ~delay:100_000L (fun () ->
            Device.reply b ~to_:src ~corr
              (Message.App_message { tag = "late"; body = "" }))
      | _ -> ());
  let leaked = ref 0 in
  Device.set_app_handler a (fun msg ->
      match msg.Message.payload with
      | Message.App_message _ -> incr leaked
      | _ -> ());
  Device.start a;
  Device.start b;
  Engine.run engine;
  let timed_out = ref false in
  Device.request a ~timeout:10_000L ~dst:(Types.Device (Device.id b))
    (Message.App_message { tag = "q"; body = "" })
    (fun payload ->
      match payload with
      | Message.Error_msg { code = Types.E_busy; _ } -> timed_out := true
      | _ -> ());
  Engine.run engine;
  checkb "request timed out" true !timed_out;
  check "late response swallowed" 1 (Device.late_responses a);
  check "nothing leaked to app handler" 0 !leaked

let test_dropped_doorbells_counted () =
  let engine, bus, mem = rig () in
  let a = Device.create bus ~mem ~name:"a" () in
  let b = Device.create bus ~mem ~name:"b" () in
  Device.start a;
  Engine.run engine;
  (* b was never started: not live, so its doorbell is dropped. *)
  Sysbus.notify bus ~src:(Device.id a) ~dst:(Device.id b) ~queue:0;
  Engine.run engine;
  check "doorbell dropped" 1 (Sysbus.counters bus).Sysbus.doorbells_dropped

(* --- revive under an active heartbeat sweep ---------------------------------- *)

let test_revive_rejoins_under_heartbeat_sweep () =
  let engine, bus, mem = rig ~heartbeat_timeout_ns:100_000L () in
  let d = Device.create bus ~mem ~name:"d" () in
  Device.start d;
  Device.enable_heartbeat d ~period:40_000L;
  Engine.run ~until:150_000L engine;
  checkb "live after boot" true (Sysbus.is_live bus (Device.id d));
  Sysbus.fail_device bus (Device.id d);
  checkb "dead after failure" false (Sysbus.is_live bus (Device.id d));
  (* A stale heartbeat from the dead window must not resurrect it. *)
  Sysbus.send bus
    (Message.make ~src:(Device.id d) ~dst:Types.Bus ~corr:0 Message.Heartbeat);
  Engine.run ~until:300_000L engine;
  checkb "stale heartbeat ignored" false (Sysbus.is_live bus (Device.id d));
  (* The §4 recovery: reconnect the slot, then the device reannounces. *)
  Sysbus.revive_device bus (Device.id d);
  Device.reannounce d;
  Engine.run ~until:350_000L engine;
  checkb "rejoined" true (Sysbus.is_live bus (Device.id d));
  (* Its heartbeat loop resumes, so the sweep keeps it live. *)
  Engine.run ~until:700_000L engine;
  checkb "stays live across sweeps" true (Sysbus.is_live bus (Device.id d))

(* --- the full chaos soak (T13) ----------------------------------------------- *)

let test_t13_survives_with_failover () =
  let table = Experiments.t13 () in
  check "two designs" 2 (List.length table.Experiments.rows);
  List.iter
    (fun row ->
      match row with
      | design :: ops :: completed :: _ ->
        let ops = int_of_string ops and completed = int_of_string completed in
        checkb
          (design ^ " >= 99% ops eventually succeed")
          true
          (float_of_int completed >= 0.99 *. float_of_int ops);
        Alcotest.(check string)
          (design ^ " converged")
          "yes"
          (List.nth row (List.length row - 1))
      | _ -> Alcotest.fail "malformed row")
    table.Experiments.rows;
  (* CPU-less row: the provider crash forced at least one failover, and the
     crash window itself was injected exactly once. *)
  (match table.Experiments.rows with
  | [ cpu_less; _ ] ->
    checkb "failover happened" true (int_of_string (List.nth cpu_less 6) >= 1);
    check "one crash injected" 1 (int_of_string (List.nth cpu_less 7))
  | _ -> Alcotest.fail "expected two rows")

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "zero plan inert" `Quick test_zero_plan_inert;
          Alcotest.test_case "same seed, same faults" `Quick
            test_same_seed_same_faults;
          Alcotest.test_case "faults fire and are counted" `Quick
            test_faults_actually_fire;
        ] );
      ( "wire",
        [
          Alcotest.test_case "framed roundtrip" `Quick test_framed_roundtrip;
          Alcotest.test_case "CRC catches any bit flip" `Quick
            test_framed_detects_any_bit_flip;
        ] );
      ( "nand",
        [
          Alcotest.test_case "transient read failure" `Quick
            test_nand_transient_read_failure;
          Alcotest.test_case "bit flip caught by page CRC" `Quick
            test_nand_bit_flip_caught_by_page_crc;
        ] );
      ( "retry",
        [
          Alcotest.test_case "retries then gives up" `Quick
            test_request_retries_then_gives_up;
          Alcotest.test_case "late response swallowed" `Quick
            test_late_response_swallowed;
          Alcotest.test_case "dropped doorbells counted" `Quick
            test_dropped_doorbells_counted;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "revive rejoins under sweep" `Quick
            test_revive_rejoins_under_heartbeat_sweep;
          Alcotest.test_case "t13 chaos soak" `Slow
            test_t13_survives_with_failover;
        ] );
    ]
