(* Determinism-equivalence goldens.

   The simulation's observable behaviour is pinned to exact 64-bit values:
   the metrics digest of a full run and a hash of the complete sanitizer
   journal (times, event labels and per-tick state hashes) for the three
   soak experiments, all at the default seed. Hot-path work — lazy event
   labels, heap tuning, queue pre-sizing, streaming frame hashes — must
   keep every value bit-identical; a mismatch here means an "optimisation"
   changed what the simulation computes, not just how fast.

   The goldens were captured before the hot-path rewrite, so they also
   prove the rewrite itself preserved behaviour.

   The second half pins the streaming-hash contract: hashing a frame's
   bytes incrementally (the Sanitizer fnv fold) must equal hashing the formatted
   description string, for both the digest seed and the fault-key seed —
   that equivalence is what lets the hot path skip formatting entirely. *)

module Engine = Lastcpu_sim.Engine
module Sanitizer = Lastcpu_sim.Sanitizer
module Faults = Lastcpu_sim.Faults
module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Sysbus = Lastcpu_bus.Sysbus
module Experiments = Lastcpu_core.Experiments

(* --- golden digests and journals --------------------------------------- *)

(* One value per journal: fold times, labels and state hashes in order.
   Labels are folded through [hash_string], so a renamed or reordered
   event label changes the journal hash even if state digests agree. *)
let journal_hash j =
  List.fold_left
    (fun acc (t : Sanitizer.tick) ->
      let acc = Sanitizer.combine acc t.time in
      let acc =
        List.fold_left
          (fun a l -> Sanitizer.combine a (Sanitizer.hash_string 0L l))
          acc t.labels
      in
      Sanitizer.combine acc t.state_hash)
    0x6a6f75726e616cL (* "journal" *) j

(* Captured at seed 42 from the pre-optimisation engine. *)
let goldens =
  [
    ("t1", 0xde0dcbcf04df9998L, 202, 0x4bdb7734e7ce6b01L);
    ("t13", 0xc8c4e7e092b9eb73L, 439, 0xe5aec6262c682bfeL);
    ("t14", 0xd41705e6968ba68aL, 210, 0x6e6cd61ce412f0a2L);
  ]

let test_metrics_digest exp expected () =
  Alcotest.(check int64)
    (exp ^ " metrics digest") expected
    (Experiments.metrics_digest ~exp ~seed:42L)

let test_journal exp expected_len expected_hash () =
  let j = Experiments.sanitize_journal ~exp ~seed:42L ~tie:Engine.Fifo in
  Alcotest.(check int) (exp ^ " journal length") expected_len (List.length j);
  Alcotest.(check int64) (exp ^ " journal hash") expected_hash (journal_hash j)

(* Distinct seeds must not collide on the digest (guards against the
   digest degenerating into a constant). T13 is the seeded chaos soak, so
   its digest must move with the seed; T1 uses no randomness and is
   legitimately seed-independent. *)
let test_seed_sensitivity () =
  Alcotest.(check bool)
    "different seeds give different digests" true
    (Experiments.metrics_digest ~exp:"t13" ~seed:42L
    <> Experiments.metrics_digest ~exp:"t13" ~seed:43L)

(* --- streaming-hash contract ------------------------------------------- *)

let sample_token =
  Token.mint ~key:0xFEEDL ~issuer:1 ~subject:2 ~pasid:3 ~resource:"dram"
    ~base:0x1000L ~length:65536L ~perm:Types.perm_rw ~nonce:9L ()

let sample_messages =
  [
    Message.make ~src:1 ~dst:Types.Bus ~corr:0 Message.Heartbeat;
    Message.make ~src:12 ~dst:(Types.Device 3) ~corr:7
      (Message.Error_msg { code = Types.E_busy; detail = "lane full" });
    Message.make ~src:255 ~dst:Types.Broadcast ~corr:1
      (Message.Device_alive { services = [] });
    Message.make ~src:1 ~dst:Types.Bus ~corr:42
      (Message.Map_directive
         {
           device = 2;
           pasid = 3;
           va = 0x4000_0000L;
           pa = 0x1000_0000L;
           bytes = 65536L;
           perm = Types.perm_rw;
           auth = sample_token;
         });
  ]

let test_frame_hash_equivalence () =
  List.iter
    (fun msg ->
      let desc = Sysbus.frame_desc msg in
      Alcotest.(check int64)
        ("frame_hash = hash_string(frame_desc) for " ^ desc)
        (Sanitizer.hash_string Sysbus.frame_digest_seed desc)
        (Sysbus.frame_hash msg);
      Alcotest.(check int64)
        ("frame_key = Faults.key_of_string(frame_desc) for " ^ desc)
        (Faults.key_of_string desc) (Sysbus.frame_key msg))
    sample_messages

(* [fnv_int] renders the decimal digits of its argument; it must agree
   with formatting via %d for every shape of int, including min_int. *)
let test_fnv_int_equivalence () =
  List.iter
    (fun n ->
      Alcotest.(check int64)
        (Printf.sprintf "fnv_int %d = fnv_string %S" n (string_of_int n))
        (Sanitizer.fnv_string (Sanitizer.fnv_init 0L) (string_of_int n))
        (Sanitizer.fnv_int (Sanitizer.fnv_init 0L) n))
    [ 0; 1; 9; 10; 42; 4095; max_int; -1; -10; -4096; min_int ]

let test_streaming_split_equivalence () =
  let s = "bus:12>dev3:error" in
  let streamed =
    Sanitizer.fnv_finish
      (Sanitizer.fnv_string
         (Sanitizer.fnv_char
            (Sanitizer.fnv_string (Sanitizer.fnv_init 5L) "bus:12")
            '>')
         "dev3:error")
  in
  Alcotest.(check int64)
    "piecewise streaming equals whole-string hash"
    (Sanitizer.hash_string 5L s) streamed

let () =
  Alcotest.run "determinism"
    [
      ( "goldens",
        List.concat_map
          (fun (exp, digest, len, jhash) ->
            [
              Alcotest.test_case (exp ^ " digest") `Slow
                (test_metrics_digest exp digest);
              Alcotest.test_case (exp ^ " journal") `Slow
                (test_journal exp len jhash);
            ])
          goldens
        @ [ Alcotest.test_case "seed sensitivity" `Slow test_seed_sensitivity ]
      );
      ( "streaming-hash",
        [
          Alcotest.test_case "frame hash/key" `Quick test_frame_hash_equivalence;
          Alcotest.test_case "fnv_int" `Quick test_fnv_int_equivalence;
          Alcotest.test_case "piecewise fold" `Quick
            test_streaming_split_equivalence;
        ] );
    ]
