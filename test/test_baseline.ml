(* Tests for the centralized comparator: kernel queueing and the
   syscall-mediated storage path. *)

module Engine = Lastcpu_sim.Engine
module Costs = Lastcpu_sim.Costs
module Kernel = Lastcpu_baseline.Kernel
module Central = Lastcpu_baseline.Central
module Fs = Lastcpu_fs.Fs
module Store = Lastcpu_kv.Store

let test_syscall_cost_model () =
  let engine = Engine.create () in
  let kern = Kernel.create engine () in
  let finished = ref 0L in
  Kernel.syscall kern ~name:"x" (fun () -> finished := Engine.now engine);
  Engine.run engine;
  let costs = Costs.default in
  Alcotest.(check int64) "syscall + kernel_op"
    (Int64.add costs.Costs.syscall_ns costs.Costs.kernel_op_ns)
    !finished;
  Alcotest.(check int) "counted" 1 (Kernel.syscalls kern)

let test_kernel_serializes_on_one_core () =
  let engine = Engine.create () in
  let kern = Kernel.create engine ~cores:1 () in
  let finishes = ref [] in
  for _ = 1 to 3 do
    Kernel.syscall kern ~name:"x" (fun () -> finishes := Engine.now engine :: !finishes)
  done;
  Engine.run engine;
  let costs = Costs.default in
  let per = Int64.add costs.Costs.syscall_ns costs.Costs.kernel_op_ns in
  Alcotest.(check (list int64)) "back to back"
    [ per; Int64.mul 2L per; Int64.mul 3L per ]
    (List.rev !finishes)

let test_multicore_parallelism () =
  let engine = Engine.create () in
  let kern = Kernel.create engine ~cores:2 () in
  let finishes = ref [] in
  for _ = 1 to 2 do
    Kernel.syscall kern ~name:"x" (fun () -> finishes := Engine.now engine :: !finishes)
  done;
  Engine.run engine;
  match !finishes with
  | [ a; b ] -> Alcotest.(check int64) "parallel completion" a b
  | _ -> Alcotest.fail "expected two completions"

let test_interrupt_cost () =
  let engine = Engine.create () in
  let kern = Kernel.create engine () in
  let finished = ref 0L in
  Kernel.interrupt kern ~name:"irq" (fun () -> finished := Engine.now engine);
  Engine.run engine;
  let costs = Costs.default in
  Alcotest.(check int64) "interrupt + kernel_op"
    (Int64.add costs.Costs.interrupt_ns costs.Costs.kernel_op_ns)
    !finished

let test_central_file_io () =
  let engine = Engine.create () in
  let central = Central.create engine () in
  let done1 = ref None in
  Central.file_create central ~path:"/f" ~user:"u" (fun r -> done1 := Some r);
  Engine.run engine;
  (match !done1 with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "create failed");
  let wrote = ref None in
  Central.file_write central ~path:"/f" ~user:"u" ~off:0 ~data:"central data"
    (fun r -> wrote := Some r);
  Engine.run engine;
  (match !wrote with Some (Ok ()) -> () | _ -> Alcotest.fail "write failed");
  let got = ref None in
  Central.file_read central ~path:"/f" ~user:"u" ~off:0 ~len:12 (fun r ->
      got := Some r);
  Engine.run engine;
  (match !got with
  | Some (Ok data) -> Alcotest.(check string) "data" "central data" data
  | _ -> Alcotest.fail "read failed");
  (* Each mediated op = 1 syscall + 1 completion interrupt. *)
  Alcotest.(check int) "syscalls" 3 (Kernel.syscalls (Central.kernel central));
  Alcotest.(check int) "interrupts" 3 (Kernel.interrupts (Central.kernel central))

let test_central_io_charges_flash_time () =
  let engine = Engine.create () in
  let central = Central.create engine () in
  let t_done = ref 0L in
  Central.file_create central ~path:"/f" ~user:"u" (fun _ -> ());
  Engine.run engine;
  let t0 = Engine.now engine in
  Central.file_write central ~path:"/f" ~user:"u" ~off:0 ~data:"x" (fun _ ->
      t_done := Engine.now engine);
  Engine.run engine;
  let costs = Costs.default in
  Alcotest.(check bool) "write pays NAND program time" true
    (Int64.sub !t_done t0 >= costs.Costs.flash_write_page_ns)

let test_central_store_backend_recovery () =
  let engine = Engine.create () in
  let central = Central.create engine () in
  let backend = Central.store_backend central ~path:"/kv.log" ~user:"kvs" in
  let store = Store.create backend in
  let pending = ref 0 in
  for i = 1 to 10 do
    incr pending;
    Store.put store ~key:(Printf.sprintf "k%d" i) ~value:"v" (fun _ -> decr pending)
  done;
  Engine.run engine;
  Alcotest.(check int) "all applied" 0 !pending;
  let store2 = Store.create backend in
  let n = ref None in
  Store.recover store2 (fun r -> n := Some r);
  Engine.run engine;
  (match !n with
  | Some (Ok records) -> Alcotest.(check int) "recovered" 10 records
  | _ -> Alcotest.fail "recover failed");
  Alcotest.(check int) "index size" 10 (Store.size store2)

let test_central_same_fs_semantics () =
  (* The baseline uses the same FS implementation: permissions etc. hold. *)
  let engine = Engine.create () in
  let central = Central.create engine () in
  let fs = Central.fs central in
  (match Fs.create fs ~user:"alice" ~mode:0o600 "/secret" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fs.error_to_string e));
  match Fs.read fs ~user:"bob" "/secret" ~off:0 ~len:1 with
  | Error (Fs.Permission _) -> ()
  | _ -> Alcotest.fail "baseline lost permission semantics"

let test_kernel_run_queue_eagain () =
  let engine = Engine.create () in
  let kern = Kernel.create engine ~cores:1 ~run_queue_capacity:2 () in
  let ran = ref 0 in
  let submit () = Kernel.try_syscall kern ~name:"x" (fun () -> incr ran) in
  (match submit () with
  | `Ok -> ()
  | `Eagain _ -> Alcotest.fail "first refused");
  (match submit () with
  | `Ok -> ()
  | `Eagain _ -> Alcotest.fail "second refused");
  (match submit () with
  | `Ok -> Alcotest.fail "over-capacity work admitted"
  | `Eagain hint ->
    Alcotest.(check bool) "positive drain hint" true (hint > 0L));
  Alcotest.(check int) "eagain counted" 1 (Kernel.eagains kern);
  Engine.run engine;
  Alcotest.(check int) "admitted work ran" 2 !ran;
  Alcotest.(check int) "only admitted work counted" 2 (Kernel.syscalls kern);
  (* Drained: the queue admits again (interrupt path shares the bound). *)
  (match Kernel.try_interrupt kern ~name:"irq" (fun () -> incr ran) with
  | `Ok -> ()
  | `Eagain _ -> Alcotest.fail "refused after drain");
  Engine.run engine;
  Alcotest.(check int) "post-drain work ran" 3 !ran

let test_central_rx_refused_when_saturated () =
  let engine = Engine.create () in
  let central = Central.create engine ~cores:1 ~run_queue_capacity:1 () in
  (* Occupy the single core's whole run queue. *)
  (match
     Kernel.try_syscall (Central.kernel central) ~name:"hog" (fun () -> ())
   with
  | `Ok -> ()
  | `Eagain _ -> Alcotest.fail "hog refused");
  let busy_hint = ref None in
  let completed = ref false in
  Central.try_kv_network_op central
    (fun tx -> tx ())
    ~on_busy:(fun ~retry_after_ns -> busy_hint := Some retry_after_ns)
    (fun () -> completed := true);
  (match !busy_hint with
  | Some hint -> Alcotest.(check bool) "hint positive" true (hint > 0L)
  | None -> Alcotest.fail "rx admitted on a full run queue");
  Engine.run engine;
  Alcotest.(check bool) "refused op never completed" false !completed;
  Alcotest.(check int) "refusal counted" 1
    (Kernel.eagains (Central.kernel central));
  (* Idle again: the same op is now admitted and completes. *)
  Central.try_kv_network_op central
    (fun tx -> tx ())
    ~on_busy:(fun ~retry_after_ns:_ -> Alcotest.fail "refused when idle")
    (fun () -> completed := true);
  Engine.run engine;
  Alcotest.(check bool) "admitted op completed" true !completed

let () =
  Alcotest.run "baseline"
    [
      ( "kernel",
        [
          Alcotest.test_case "syscall cost" `Quick test_syscall_cost_model;
          Alcotest.test_case "serialization" `Quick test_kernel_serializes_on_one_core;
          Alcotest.test_case "multicore" `Quick test_multicore_parallelism;
          Alcotest.test_case "interrupt cost" `Quick test_interrupt_cost;
          Alcotest.test_case "run queue eagain" `Quick test_kernel_run_queue_eagain;
        ] );
      ( "central",
        [
          Alcotest.test_case "file io" `Quick test_central_file_io;
          Alcotest.test_case "flash time charged" `Quick test_central_io_charges_flash_time;
          Alcotest.test_case "store backend recovery" `Quick
            test_central_store_backend_recovery;
          Alcotest.test_case "same fs semantics" `Quick test_central_same_fs_semantics;
          Alcotest.test_case "rx refused when saturated" `Quick
            test_central_rx_refused_when_saturated;
        ] );
    ]
