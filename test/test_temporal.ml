(* Tests for temporal decoupling: the quantum-synchronized shard
   coordinator (Temporal), the persistent lane pool and run_jobs edge
   cases (Parallel), the cross-shard boundary plumbing in Sysbus/Netsim/
   Shardlink, and the T15 determinism contract (fixed seed and quantum
   => results independent of the execution-lane count). *)

module Engine = Lastcpu_sim.Engine
module Temporal = Lastcpu_sim.Temporal
module Parallel = Lastcpu_sim.Parallel
module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Iommu = Lastcpu_iommu.Iommu
module Sysbus = Lastcpu_bus.Sysbus
module Shardlink = Lastcpu_bus.Shardlink
module Netsim = Lastcpu_net.Netsim
module Experiments = Lastcpu_core.Experiments
module System = Lastcpu_core.System

(* --- Parallel.run_jobs edge cases -------------------------------------- *)

let test_run_jobs_rejects_bad_jobs () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Parallel.run_jobs: jobs must be >= 1 (got 0)")
    (fun () -> ignore (Parallel.run_jobs ~jobs:0 [ (fun () -> ()) ]));
  Alcotest.check_raises "jobs = -3"
    (Invalid_argument "Parallel.run_jobs: jobs must be >= 1 (got -3)")
    (fun () -> ignore (Parallel.run_jobs ~jobs:(-3) [ (fun () -> ()) ]))

let test_run_jobs_more_jobs_than_tasks () =
  (* jobs > tasks must degrade to one domain per task, not spawn idle
     domains; results come back in submission order. *)
  let tasks = List.init 3 (fun i () -> i * 10) in
  Alcotest.(check (list int)) "order kept" [ 0; 10; 20 ]
    (Parallel.run_jobs ~jobs:8 tasks);
  Alcotest.(check (list int)) "empty task list" []
    (Parallel.run_jobs ~jobs:8 [])

let test_run_jobs_sequential_path () =
  (* jobs = 1 runs inline: tasks see each other's side effects in order. *)
  let log = ref [] in
  let tasks = List.init 4 (fun i () -> log := i :: !log; i) in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3 ]
    (Parallel.run_jobs ~jobs:1 tasks);
  Alcotest.(check (list int)) "ran in order" [ 3; 2; 1; 0 ] !log

let test_run_jobs_propagates_earliest_exception () =
  Alcotest.check_raises "earliest index wins" (Failure "task-1") (fun () ->
      ignore
        (Parallel.run_jobs ~jobs:4
           [
             (fun () -> 0);
             (fun () -> failwith "task-1");
             (fun () -> failwith "task-2");
           ]))

(* --- Parallel.Pool ------------------------------------------------------ *)

let test_pool_basics () =
  Alcotest.check_raises "lanes = 0"
    (Invalid_argument "Parallel.Pool.create: lanes must be >= 1 (got 0)")
    (fun () -> ignore (Parallel.Pool.create ~lanes:0));
  let pool = Parallel.Pool.create ~lanes:2 in
  Alcotest.(check int) "lanes" 2 (Parallel.Pool.lanes pool);
  let hits = Array.make 8 0 in
  Parallel.Pool.run pool
    (Array.init 8 (fun i () -> hits.(i) <- hits.(i) + 1));
  Alcotest.(check (array int)) "every task ran once" (Array.make 8 1) hits;
  (* The pool is reusable across rounds. *)
  Parallel.Pool.run pool (Array.init 8 (fun i () -> hits.(i) <- hits.(i) + 1));
  Alcotest.(check (array int)) "second round" (Array.make 8 2) hits;
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Parallel.Pool.run: pool is shut down") (fun () ->
      Parallel.Pool.run pool [| (fun () -> ()) |])

(* --- Temporal: construction and quantum geometry ------------------------ *)

let test_temporal_validation () =
  Alcotest.check_raises "no shards"
    (Invalid_argument "Temporal.create: need at least one shard") (fun () ->
      ignore (Temporal.create ~lookahead:10L [||]));
  Alcotest.check_raises "lookahead < 1"
    (Invalid_argument "Temporal.create: lookahead must be >= 1ns")
    (fun () -> ignore (Temporal.create ~lookahead:0L [| Engine.create () |]));
  Alcotest.check_raises "quantum > lookahead"
    (Invalid_argument
       "Temporal.create: quantum must be in [0, lookahead=10] (got 11)")
    (fun () ->
      ignore (Temporal.create ~quantum:11L ~lookahead:10L [| Engine.create () |]))

(* A message posted mid-quantum is invisible to the destination until the
   window closes, then becomes a pending event at exactly send + lookahead
   and fires in the following window. *)
let test_mid_quantum_message_at_next_boundary () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let tm = Temporal.create ~quantum:100L ~lookahead:100L [| e0; e1 |] in
  let fired = ref (-1L) in
  Engine.schedule e0 ~delay:10L (fun () ->
      Temporal.post tm ~src:0 ~dst:1 (fun () -> fired := Engine.now e1));
  (* Window 1 (target = edge 100): the post happens at t=10 but shard 1
     must observe nothing inside the window... *)
  Alcotest.(check bool) "window 1 ran" true (Temporal.run_window tm);
  Alcotest.(check int64) "not fired inside the window" (-1L) !fired;
  (* ...and after the rendezvous the arrival sits queued at 10 + 100. *)
  Alcotest.(check (option int64)) "queued at send + lookahead" (Some 110L)
    (Engine.next_event_time e1);
  Alcotest.(check bool) "window 2 ran" true (Temporal.run_window tm);
  Alcotest.(check int64) "fired at its natural timestamp" 110L !fired;
  Alcotest.(check bool) "drained" false (Temporal.run_window tm);
  Alcotest.(check int) "one boundary event" 1 (Temporal.boundary_events tm)

(* Ping-pong across two shards, once through the coordinator and once as a
   plain single-engine schedule with the same latency: the (who, when,
   round) traces must match exactly — with quantum = 0 (lock-step) and
   with the full quantum alike. *)
let pingpong_temporal ~quantum rounds =
  let e0 = Engine.create () and e1 = Engine.create () in
  let tm = Temporal.create ~quantum ~lookahead:100L [| e0; e1 |] in
  let tr = ref [] in
  let rec ping i () =
    tr := (0, Engine.now e0, i) :: !tr;
    if i < rounds then Temporal.post tm ~src:0 ~dst:1 (pong (i + 1))
  and pong i () =
    tr := (1, Engine.now e1, i) :: !tr;
    if i < rounds then Temporal.post tm ~src:1 ~dst:0 (ping (i + 1))
  in
  Engine.schedule e0 ~delay:7L (ping 0);
  Temporal.run tm;
  List.rev !tr

let pingpong_sequential rounds =
  let e = Engine.create () in
  let tr = ref [] in
  let rec ping i () =
    tr := (0, Engine.now e, i) :: !tr;
    if i < rounds then Engine.schedule e ~delay:100L (pong (i + 1))
  and pong i () =
    tr := (1, Engine.now e, i) :: !tr;
    if i < rounds then Engine.schedule e ~delay:100L (ping (i + 1))
  in
  Engine.schedule e ~delay:7L (ping 0);
  Engine.run e;
  List.rev !tr

let trace = Alcotest.(list (triple int int64 int))

let test_lockstep_matches_sequential () =
  let reference = pingpong_sequential 9 in
  Alcotest.check trace "quantum = 0 (lock-step)" reference
    (pingpong_temporal ~quantum:0L 9);
  Alcotest.check trace "quantum = lookahead" reference
    (pingpong_temporal ~quantum:100L 9)

(* All boundary events sharing (destination, arrival time) are delivered
   as one scheduled closure in (source shard, sequence) order, so the
   destination heap's tie-break — even the sanitizer's perturbations —
   cannot reorder them. *)
let boundary_order ~tie =
  let e0 = Engine.create () and e1 = Engine.create () in
  let e2 = Engine.create ~tie () in
  let tm = Temporal.create ~lookahead:50L [| e0; e1; e2 |] in
  let order = ref [] in
  let arrive tag () = order := tag :: !order in
  (* Posts at t = 10 from two different shards => same arrival t = 60 on
     shard 2, flushed at edge 50; a local event already queued for exactly
     t = 60 supplies a genuine same-tick heap collision, so the tie-break
     really gets to choose an order — it may put "local" anywhere, but it
     must not crack open the boundary group. *)
  Engine.schedule_at e2 ~time:60L (arrive "local");
  Engine.schedule_at e0 ~time:10L (fun () ->
      Temporal.post tm ~src:0 ~dst:2 (arrive "shard0-first");
      Temporal.post tm ~src:0 ~dst:2 (arrive "shard0-second"));
  Engine.schedule_at e1 ~time:10L (fun () ->
      Temporal.post tm ~src:1 ~dst:2 (arrive "shard1"));
  Temporal.run tm;
  List.rev !order

let test_tie_break_cannot_reorder_boundary_delivery () =
  List.iter
    (fun tie ->
      let order = boundary_order ~tie in
      Alcotest.(check (list string))
        "boundary subsequence is (src, seq)-ordered"
        [ "shard0-first"; "shard0-second"; "shard1" ]
        (List.filter (fun t -> t <> "local") order);
      Alcotest.(check int) "all four delivered" 4 (List.length order))
    [ Engine.Fifo; Engine.Lifo; Engine.Salted 0xBADC0FFEEL ]

(* --- Netsim boundary ports ---------------------------------------------- *)

let test_netsim_boundary_port () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let net0 = Netsim.create ~shard:0 e0 in
  let net1 = Netsim.create ~shard:1 e1 in
  Alcotest.(check int) "home shard" 1 (Netsim.home_shard net1);
  let a = Netsim.endpoint net0 ~name:"a" in
  let b_proxy = Netsim.endpoint ~shard:1 net0 ~name:"b" in
  Alcotest.(check int) "proxy affinity" 1 (Netsim.shard b_proxy);
  let b = Netsim.endpoint net1 ~name:"b" in
  let got = ref None in
  Netsim.set_receiver b (fun ~src frame -> got := Some (src, frame));
  let crossed = ref [] in
  Netsim.set_boundary net0 (fun ~dst_shard ~src ~dst frame ->
      crossed := (dst_shard, src, dst) :: !crossed;
      Netsim.inject net1 ~src:7 ~dst:(Netsim.address b) frame);
  Alcotest.check_raises "boundary wires once"
    (Invalid_argument "Netsim.set_boundary: boundary uplink already wired")
    (fun () -> Netsim.set_boundary net0 (fun ~dst_shard:_ ~src:_ ~dst:_ _ -> ()));
  Netsim.send a ~dst:(Netsim.address b_proxy) "hello";
  Engine.run e0;
  Alcotest.(check (list (triple int int int)))
    "frame rode the uplink after local serialisation"
    [ (1, Netsim.address a, Netsim.address b_proxy) ]
    !crossed;
  Alcotest.(check int) "counted" 1 (Netsim.boundary_out net0);
  Engine.run e1;
  (match !got with
  | Some (src, frame) ->
    Alcotest.(check int) "src as injected" 7 src;
    Alcotest.(check string) "payload intact" "hello" frame
  | None -> Alcotest.fail "frame never delivered on the far shard");
  Alcotest.(check int) "far side counts it as local delivery" 1
    (Netsim.frames_delivered net1)

(* --- Sysbus + Shardlink round trip -------------------------------------- *)

let test_shardlink_round_trip () =
  let e0 = Engine.create () and e1 = Engine.create () in
  let bus0 = Sysbus.create ~shard:0 e0 and bus1 = Sysbus.create ~shard:1 e1 in
  let got_b = ref None and got_a = ref None in
  let b =
    Sysbus.attach bus1 ~name:"b" ~iommu:(Iommu.create ())
      ~handler:(fun msg -> got_b := Some msg)
  in
  let a =
    Sysbus.attach bus0 ~name:"a" ~iommu:(Iommu.create ())
      ~handler:(fun msg -> got_a := Some msg)
  in
  List.iter
    (fun (bus, id) ->
      Sysbus.send bus
        (Message.make ~src:id ~dst:Types.Bus ~corr:0
           (Message.Device_alive { services = [] }));
      Engine.run (Sysbus.engine bus))
    [ (bus0, a); (bus1, b) ];
  let tm = Temporal.create ~lookahead:1000L [| e0; e1 |] in
  let sl = Shardlink.create tm [| bus0; bus1 |] in
  let pa, pb = Shardlink.link sl ~a:(0, a) ~b:(1, b) in
  Alcotest.(check bool) "proxy is remote on its bus" true
    (Sysbus.is_remote bus0 pa);
  Alcotest.(check int) "proxy affinity" 1 (Sysbus.device_shard bus0 pa);
  (* a -> proxy-on-a crosses to b, src rewritten to proxy-on-b... *)
  Sysbus.send bus0
    (Message.make ~src:a ~dst:(Types.Device pa) ~corr:77
       (Message.App_message { tag = "ping"; body = "x" }));
  Temporal.run tm;
  (match !got_b with
  | Some msg ->
    Alcotest.(check int) "src is the b-side proxy" pb msg.Message.src;
    Alcotest.(check int) "corr preserved" 77 msg.Message.corr
  | None -> Alcotest.fail "ping never crossed");
  Alcotest.(check int) "bus0 counted the crossing" 1
    (Sysbus.boundary_out bus0);
  (* ...and the reply path works symmetrically. *)
  Sysbus.send bus1
    (Message.make ~src:b ~dst:(Types.Device pb) ~corr:77
       (Message.App_message { tag = "pong"; body = "y" }));
  Temporal.run tm;
  (match !got_a with
  | Some msg ->
    Alcotest.(check int) "src is the a-side proxy" pa msg.Message.src;
    Alcotest.(check int) "corr preserved" 77 msg.Message.corr
  | None -> Alcotest.fail "pong never crossed back")

(* --- T15: the determinism contract end to end --------------------------- *)

(* The full soak, once per lane count: digests, event counts and sanitizer
   journals must be bit-identical — lanes are an execution detail. *)
let test_t15_lane_invariance () =
  let r1 = Experiments.t15_soak ~shards:1 ~seed:42L () in
  let r4 = Experiments.t15_soak ~shards:4 ~seed:42L () in
  Alcotest.(check int64) "digest" r1.Experiments.t15_digest
    r4.Experiments.t15_digest;
  Alcotest.(check int) "events executed" r1.Experiments.t15_events
    r4.Experiments.t15_events;
  Alcotest.(check int) "boundary messages" r1.Experiments.t15_boundary
    r4.Experiments.t15_boundary;
  Alcotest.(check int) "windows" r1.Experiments.t15_windows
    r4.Experiments.t15_windows;
  Alcotest.(check int64) "virtual elapsed" r1.Experiments.t15_elapsed
    r4.Experiments.t15_elapsed

let test_t15_sanitizer_journal_lane_invariance () =
  let journal shards =
    let r = Experiments.t15_soak ~shards ~sanitize:true ~seed:42L () in
    Array.to_list r.Experiments.t15_systems
    |> List.concat_map (fun sys -> Engine.sanitizer_journal (System.engine sys))
  in
  let j1 = journal 1 and j4 = journal 4 in
  Alcotest.(check int) "journal length" (List.length j1) (List.length j4);
  Alcotest.(check bool) "journals identical (ticks, labels, hashes)" true
    (j1 = j4)

(* The sanitize entry point itself: t15's check is digest tie-invariance
   plus per-tie lane invariance (not the FIFO-vs-perturbed journal diff,
   which t15's drift-dissolvable coincidental collisions would trip). Both
   perturbations must come back clean. *)
let test_t15_sanitize_reports_clean () =
  let reports = Experiments.sanitize ~exp:"t15" () in
  Alcotest.(check int) "two perturbations" 2 (List.length reports);
  List.iter
    (fun (r : Experiments.sanitize_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "no race vs %s" r.Experiments.san_perturbation)
        true
        (r.Experiments.san_divergence = None);
      Alcotest.(check bool)
        (Printf.sprintf "journalled ticks vs %s" r.Experiments.san_perturbation)
        true
        (r.Experiments.san_multi_event_ticks > 0))
    reports

let () =
  Alcotest.run "temporal"
    [
      ( "parallel",
        [
          Alcotest.test_case "run_jobs rejects jobs <= 0" `Quick
            test_run_jobs_rejects_bad_jobs;
          Alcotest.test_case "run_jobs jobs > tasks" `Quick
            test_run_jobs_more_jobs_than_tasks;
          Alcotest.test_case "run_jobs sequential path" `Quick
            test_run_jobs_sequential_path;
          Alcotest.test_case "run_jobs earliest exception" `Quick
            test_run_jobs_propagates_earliest_exception;
          Alcotest.test_case "pool basics" `Quick test_pool_basics;
        ] );
      ( "quantum",
        [
          Alcotest.test_case "create validation" `Quick
            test_temporal_validation;
          Alcotest.test_case "mid-quantum message waits for the edge" `Quick
            test_mid_quantum_message_at_next_boundary;
          Alcotest.test_case "lock-step matches sequential" `Quick
            test_lockstep_matches_sequential;
          Alcotest.test_case "tie-break cannot reorder boundary delivery"
            `Quick test_tie_break_cannot_reorder_boundary_delivery;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "netsim boundary port" `Quick
            test_netsim_boundary_port;
          Alcotest.test_case "shardlink round trip" `Quick
            test_shardlink_round_trip;
        ] );
      ( "t15",
        [
          Alcotest.test_case "lane invariance" `Quick test_t15_lane_invariance;
          Alcotest.test_case "sanitizer journal lane invariance" `Quick
            test_t15_sanitizer_journal_lane_invariance;
          Alcotest.test_case "sanitize reports clean" `Quick
            test_t15_sanitize_reports_clean;
        ] );
    ]
