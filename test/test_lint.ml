(* lastcpu-lint golden tests: each fixture under lint_fixtures/ seeds one
   rule's violations; the scanner must report exactly those findings
   (rule, line, enclosing binding), the clean fixture must report none,
   and suppressions must silence findings site-by-site while a
   suppression matching nothing is surfaced as stale. *)

let fixture name = Filename.concat "lint_fixtures" name

(* The fixtures live outside the real scan roots, so the tests carry
   their own config putting lint_fixtures/ in scope for every rule. *)
let config =
  Lint_core.parse_rules
    "D001 scope=lint_fixtures\n\
     D002 scope=lint_fixtures\n\
     D003 scope=lint_fixtures\n\
     D004 scope=lint_fixtures\n\
     D005 scope=lint_fixtures\n\
     D006 scope=lint_fixtures\n\
     D009 scope=lint_fixtures\n"

let scan name =
  let path = fixture name in
  match Lint_core.scan_string config ~path (Lint_core.read_file path) with
  | Ok findings ->
    List.map
      (fun f -> (f.Lint_core.rule, f.Lint_core.line, f.Lint_core.binding))
      findings
  | Error msg -> Alcotest.failf "fixture %s failed to scan: %s" name msg

let finding = Alcotest.(list (triple string int string))

(* --- golden findings per rule ------------------------------------------------ *)

let test_d001 () =
  Alcotest.check finding "d001_hashtbl.ml"
    [ ("D001", 2, "tally"); ("D001", 3, "total") ]
    (scan "d001_hashtbl.ml")

let test_d002 () =
  (* Line 3 spells it Stdlib.Random.bool: the leading Stdlib must not
     hide the hazard. *)
  Alcotest.check finding "d002_random.ml"
    [ ("D002", 2, "jitter"); ("D002", 3, "coin") ]
    (scan "d002_random.ml")

let test_d003 () =
  Alcotest.check finding "d003_wallclock.ml"
    [ ("D003", 2, "stamp"); ("D003", 3, "shard") ]
    (scan "d003_wallclock.ml")

let test_d004 () =
  Alcotest.check finding "d004_physeq.ml"
    [ ("D004", 2, "snapshot"); ("D004", 3, "same"); ("D004", 4, "diff") ]
    (scan "d004_physeq.ml")

let test_d005 () =
  Alcotest.check finding "d005_print.ml"
    [ ("D005", 2, "report"); ("D005", 3, "shout") ]
    (scan "d005_print.ml")

let test_d006 () =
  Alcotest.check finding "d006_station.ml"
    [ ("D006", 2, "rush"); ("D006", 3, "sneak") ]
    (scan "d006_station.ml")

let test_d009 () =
  Alcotest.check finding "d009_copypath.ml"
    [ ("D009", 2, "slurp"); ("D009", 3, "stuff") ]
    (scan "d009_copypath.ml")

let test_clean () = Alcotest.check finding "clean.ml" [] (scan "clean.ml")

(* --- scope and exemptions ---------------------------------------------------- *)

let test_out_of_scope () =
  (* Same hazardous source under a path no rule covers: no findings. *)
  let src = Lint_core.read_file (fixture "d001_hashtbl.ml") in
  match Lint_core.scan_string config ~path:"elsewhere/d001.ml" src with
  | Ok [] -> ()
  | Ok fs -> Alcotest.failf "expected no findings, got %d" (List.length fs)
  | Error e -> Alcotest.fail e

let test_exempt () =
  (* An exempt= entry silences the whole file for that rule, the way
     lib/sim/detmap.ml is the blessed home of Hashtbl iteration. *)
  let config =
    Lint_core.parse_rules
      "D001 scope=lint_fixtures exempt=lint_fixtures/d001_hashtbl.ml\n"
  in
  let path = fixture "d001_hashtbl.ml" in
  match Lint_core.scan_string config ~path (Lint_core.read_file path) with
  | Ok [] -> ()
  | Ok fs -> Alcotest.failf "expected exemption, got %d findings" (List.length fs)
  | Error e -> Alcotest.fail e

(* --- suppressions ------------------------------------------------------------ *)

let scan_raw name =
  let path = fixture name in
  match Lint_core.scan_string config ~path (Lint_core.read_file path) with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "fixture %s failed to scan: %s" name msg

let test_suppressions_silence () =
  let findings = scan_raw "d001_hashtbl.ml" @ scan_raw "d005_print.ml" in
  let suppressions =
    Lint_core.parse_suppressions
      "D001 lint_fixtures/d001_hashtbl.ml tally -- fixture\n\
       D001 lint_fixtures/d001_hashtbl.ml total -- fixture\n\
       D005 lint_fixtures/d005_print.ml report -- fixture\n\
       D005 lint_fixtures/d005_print.ml shout -- fixture\n"
  in
  let unsuppressed, stale = Lint_core.apply_suppressions suppressions findings in
  Alcotest.(check int) "all silenced" 0 (List.length unsuppressed);
  Alcotest.(check int) "none stale" 0 (List.length stale)

let test_suppression_is_site_specific () =
  (* Suppressing `tally' must not silence `total' in the same file. *)
  let findings = scan_raw "d001_hashtbl.ml" in
  let suppressions =
    Lint_core.parse_suppressions
      "D001 lint_fixtures/d001_hashtbl.ml tally -- fixture\n"
  in
  let unsuppressed, stale = Lint_core.apply_suppressions suppressions findings in
  Alcotest.(check int) "one left" 1 (List.length unsuppressed);
  Alcotest.(check string) "the other binding" "total"
    (List.hd unsuppressed).Lint_core.binding;
  Alcotest.(check int) "none stale" 0 (List.length stale)

let test_stale_suppression () =
  let findings = scan_raw "clean.ml" in
  let suppressions =
    Lint_core.parse_suppressions
      "D002 lint_fixtures/clean.ml add -- obsolete\n"
  in
  let unsuppressed, stale = Lint_core.apply_suppressions suppressions findings in
  Alcotest.(check int) "nothing to report" 0 (List.length unsuppressed);
  Alcotest.(check int) "stale surfaced" 1 (List.length stale);
  Alcotest.(check string) "which one" "obsolete"
    (List.hd stale).Lint_core.s_reason

let test_suppression_requires_reason () =
  Alcotest.check_raises "missing justification"
    (Failure
       "lint.suppressions:1: missing justification (use ' -- why')")
    (fun () ->
      ignore (Lint_core.parse_suppressions "D001 some/file.ml binding\n"))

(* --- config parsing ---------------------------------------------------------- *)

let test_rules_parse () =
  match
    Lint_core.parse_rules
      "# comment\nD001 scope=lib,bin exempt=lib/sim/detmap.ml # trailing\n"
  with
  | [ r ] ->
    Alcotest.(check string) "id" "D001" r.Lint_core.id;
    Alcotest.(check (list string)) "scopes" [ "lib"; "bin" ] r.Lint_core.scopes;
    Alcotest.(check (list string))
      "exempt" [ "lib/sim/detmap.ml" ] r.Lint_core.exempt
  | rs -> Alcotest.failf "expected one rule, got %d" (List.length rs)

let test_parse_error_reported () =
  match Lint_core.scan_string config ~path:"lint_fixtures/broken.ml" "let = (" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let () =
  Alcotest.run "lint"
    [
      ( "golden",
        [
          Alcotest.test_case "d001" `Quick test_d001;
          Alcotest.test_case "d002" `Quick test_d002;
          Alcotest.test_case "d003" `Quick test_d003;
          Alcotest.test_case "d004" `Quick test_d004;
          Alcotest.test_case "d005" `Quick test_d005;
          Alcotest.test_case "d006" `Quick test_d006;
          Alcotest.test_case "d009" `Quick test_d009;
          Alcotest.test_case "clean" `Quick test_clean;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "out of scope" `Quick test_out_of_scope;
          Alcotest.test_case "exempt file" `Quick test_exempt;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "silence findings" `Quick test_suppressions_silence;
          Alcotest.test_case "site specific" `Quick
            test_suppression_is_site_specific;
          Alcotest.test_case "stale is an error" `Quick test_stale_suppression;
          Alcotest.test_case "reason required" `Quick
            test_suppression_requires_reason;
        ] );
      ( "config",
        [
          Alcotest.test_case "rules parse" `Quick test_rules_parse;
          Alcotest.test_case "parse error" `Quick test_parse_error_reported;
        ] );
    ]
