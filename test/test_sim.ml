(* Tests for the simulation substrate: heap, rng, stats, trace, engine,
   station. *)

module Heap = Lastcpu_sim.Heap
module Rng = Lastcpu_sim.Rng
module Stats = Lastcpu_sim.Stats
module Trace = Lastcpu_sim.Trace
module Engine = Lastcpu_sim.Engine
module Station = Lastcpu_sim.Station

(* --- Heap ------------------------------------------------------------- *)

let test_heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~priority:3L "c";
  Heap.push h ~priority:1L "a";
  Heap.push h ~priority:2L "b";
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option (pair int64 string))) "peek" (Some (1L, "a")) (Heap.peek h);
  Alcotest.(check (option (pair int64 string))) "pop a" (Some (1L, "a")) (Heap.pop h);
  Alcotest.(check (option (pair int64 string))) "pop b" (Some (2L, "b")) (Heap.pop h);
  Alcotest.(check (option (pair int64 string))) "pop c" (Some (3L, "c")) (Heap.pop h);
  Alcotest.(check (option (pair int64 string))) "pop empty" None (Heap.pop h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:5L v) [ "first"; "second"; "third" ];
  let order = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "FIFO among ties" [ "first"; "second"; "third" ] order

let test_heap_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h ~priority:(Int64.of_int i) i
  done;
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

(* Pop order among equal priorities under each tie-break mode. *)
let tie_order tie =
  let h = Heap.create ~tie () in
  List.iter (fun v -> Heap.push h ~priority:7L v) [ "a"; "b"; "c"; "d" ];
  List.map snd (Heap.to_sorted_list h)

let test_heap_lifo_ties () =
  Alcotest.(check (list string))
    "LIFO among ties" [ "d"; "c"; "b"; "a" ] (tie_order Heap.Lifo)

let test_heap_salted_ties () =
  let o1 = tie_order (Heap.Salted 0xABCL) in
  let o2 = tie_order (Heap.Salted 0xABCL) in
  Alcotest.(check (list string)) "salted order is deterministic" o1 o2;
  Alcotest.(check (list string))
    "salted order is a permutation of the ties"
    [ "a"; "b"; "c"; "d" ] (List.sort compare o1)

(* A small hint must not cap the heap: growth past the initial capacity
   keeps every entry and the order. *)
let test_heap_growth () =
  let h = Heap.create ~hint:2 () in
  for i = 999 downto 0 do
    Heap.push h ~priority:(Int64.of_int i) i
  done;
  Alcotest.(check (list int))
    "sorted after growth" (List.init 1000 Fun.id)
    (List.map snd (Heap.to_sorted_list h))

let test_heap_top_accessors () =
  let h = Heap.create () in
  Alcotest.check_raises "top_prio on empty"
    (Invalid_argument "Heap.top_prio: empty heap") (fun () ->
      ignore (Heap.top_prio h));
  Alcotest.check_raises "pop_top on empty"
    (Invalid_argument "Heap.pop_top: empty heap") (fun () ->
      ignore (Heap.pop_top h));
  Heap.push h ~priority:9L "late";
  Heap.push h ~priority:4L "early";
  Alcotest.(check int64) "top_prio" 4L (Heap.top_prio h);
  Alcotest.(check string) "pop_top" "early" (Heap.pop_top h);
  Alcotest.(check int64) "top_prio after pop" 9L (Heap.top_prio h)

(* Regression for the pop space leak: a popped entry must not linger in the
   vacated tail slot of the backing array. A weak pointer to the popped
   value must die at the next major collection even though the heap (and
   its array) stays live. *)
let test_heap_pop_clears_slot () =
  let h = Heap.create () in
  let w = Weak.create 1 in
  let push_tracked () =
    let v = Bytes.make 8 'x' in
    Weak.set w 0 (Some v);
    Heap.push h ~priority:1L v
  in
  push_tracked ();
  Heap.push h ~priority:2L Bytes.empty (* keeps the backing array live *);
  ignore (Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool)
    "vacated slot does not retain the popped value" true (Weak.get w 0 = None);
  Alcotest.(check int) "survivor still queued" 1 (Heap.length h)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:(Int64.of_int p) i) priorities;
      let popped = List.map fst (Heap.to_sorted_list h) in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing popped && List.length popped = List.length priorities)

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:99L and b = Rng.create ~seed:99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let root = Rng.create ~seed:1L in
  let a = Rng.split root in
  let b = Rng.split root in
  Alcotest.(check bool) "split streams differ" true
    (not (Int64.equal (Rng.int64 a) (Rng.int64 b)))

let test_rng_bounds () =
  let r = Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let r = Rng.create ~seed:6L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_zipf_bounds_and_skew () =
  let r = Rng.create ~seed:7L in
  let n = 100 in
  let counts = Array.make n 0 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let v = Rng.zipf r ~n ~theta:0.99 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < n);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 should dominate rank 50 heavily under theta=0.99. *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 5 * max 1 counts.(50))

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:8L in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:100.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean within 5%" true (abs_float (mean -. 100.) < 5.)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:9L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Stats ------------------------------------------------------------- *)

let test_summary_moments () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max s);
  (* population variance = 4; sample variance = 32/7 *)
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Stats.Summary.variance s)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let whole = Stats.Summary.create () in
  for i = 1 to 100 do
    let v = float_of_int (i * i mod 37) in
    Stats.Summary.add whole v;
    if i <= 50 then Stats.Summary.add a v else Stats.Summary.add b v
  done;
  let merged = Stats.Summary.merge a b in
  Alcotest.(check int) "count" (Stats.Summary.count whole) (Stats.Summary.count merged);
  Alcotest.(check (float 1e-6)) "mean" (Stats.Summary.mean whole) (Stats.Summary.mean merged);
  Alcotest.(check (float 1e-6))
    "variance" (Stats.Summary.variance whole) (Stats.Summary.variance merged)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i)
  done;
  let p50 = Stats.Histogram.percentile h 50. in
  let p99 = Stats.Histogram.percentile h 99. in
  (* log-bucketed: accept ~10% relative error *)
  Alcotest.(check bool) "p50 near 500" true (p50 > 450. && p50 < 560.);
  Alcotest.(check bool) "p99 near 990" true (p99 > 900. && p99 < 1100.);
  Alcotest.(check bool) "p100 >= p99" true (Stats.Histogram.percentile h 100. >= p99)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  Alcotest.(check (float 0.)) "empty percentile" 0. (Stats.Histogram.percentile h 99.)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.add a 10.;
  Stats.Histogram.add b 1000.;
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "count" 2 (Stats.Histogram.count m)

(* --- Trace -------------------------------------------------------------- *)

let test_trace_order_and_filter () =
  let t = Trace.create () in
  Trace.append t ~time:1L ~actor:"a" ~kind:"x" "one";
  Trace.append t ~time:2L ~actor:"b" ~kind:"y" "two";
  Trace.append t ~time:3L ~actor:"a" ~kind:"x" "three";
  Alcotest.(check int) "length" 3 (Trace.length t);
  let kinds = List.map (fun (e : Trace.entry) -> e.Trace.kind) (Trace.entries t) in
  Alcotest.(check (list string)) "order" [ "x"; "y"; "x" ] kinds;
  Alcotest.(check int) "filter" 2 (List.length (Trace.find_all t ~kind:"x"))

let test_trace_json_lines () =
  let t = Trace.create () in
  Trace.append t ~time:5L ~actor:"a\"b" ~kind:"k" "line\nwith \\ specials\t\x01";
  let json = Trace.to_json_lines t in
  Alcotest.(check bool) "escaped quote" true
    (String.length json > 0
    &&
    let has sub =
      let n = String.length sub and m = String.length json in
      let rec scan i = i + n <= m && (String.sub json i n = sub || scan (i + 1)) in
      scan 0
    in
    has "a\\\"b" && has "\\n" && has "\\\\" && has "\\u0001")

let test_trace_capacity () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 10 do
    Trace.append t ~time:(Int64.of_int i) ~actor:"a" ~kind:"k" (string_of_int i)
  done;
  Alcotest.(check int) "bounded" 3 (Trace.length t);
  let details = List.map (fun (e : Trace.entry) -> e.Trace.detail) (Trace.entries t) in
  Alcotest.(check (list string)) "newest retained" [ "8"; "9"; "10" ] details

(* --- Engine -------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30L (fun () -> log := "c" :: !log);
  Engine.schedule e ~delay:10L (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:20L (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" 30L (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:7L (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let ran = ref 0 in
  Engine.schedule e ~delay:10L (fun () -> incr ran);
  Engine.schedule e ~delay:100L (fun () -> incr ran);
  Engine.run ~until:50L e;
  Alcotest.(check int) "only first ran" 1 !ran;
  Alcotest.(check int64) "clock at until" 50L (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let times = ref [] in
  Engine.schedule e ~delay:5L (fun () ->
      times := Engine.now e :: !times;
      Engine.schedule e ~delay:5L (fun () -> times := Engine.now e :: !times));
  Engine.run e;
  Alcotest.(check (list int64)) "nested times" [ 5L; 10L ] (List.rev !times)

let test_engine_determinism () =
  let run_once () =
    let e = Engine.create ~seed:3L () in
    let acc = ref [] in
    let rng = Engine.fork_rng e in
    for _ = 1 to 20 do
      let d = Int64.of_int (Rng.int rng 100) in
      Engine.schedule e ~delay:d (fun () -> acc := Engine.now e :: !acc)
    done;
    Engine.run e;
    !acc
  in
  Alcotest.(check (list int64)) "identical runs" (run_once ()) (run_once ())

(* --- Station --------------------------------------------------------------- *)

let test_station_serializes () =
  let e = Engine.create () in
  let st = Station.create e in
  let finish = ref [] in
  Station.submit st ~service:100L (fun () -> finish := Engine.now e :: !finish);
  Station.submit st ~service:100L (fun () -> finish := Engine.now e :: !finish);
  Station.submit st ~service:100L (fun () -> finish := Engine.now e :: !finish);
  Engine.run e;
  Alcotest.(check (list int64)) "back to back" [ 100L; 200L; 300L ] (List.rev !finish);
  Alcotest.(check int) "completed" 3 (Station.jobs_completed st);
  Alcotest.(check int64) "busy" 300L (Station.busy_ns st);
  Alcotest.(check int64) "wait = 0+100+200" 300L (Station.total_wait_ns st)

let test_station_idle_gap () =
  let e = Engine.create () in
  let st = Station.create e in
  let finish = ref 0L in
  Station.submit st ~service:10L (fun () -> ());
  Engine.run e;
  (* Now idle at t=10; submit at t=10 => finishes at 20, no wait. *)
  Station.submit st ~service:10L (fun () -> finish := Engine.now e);
  Engine.run e;
  Alcotest.(check int64) "finish" 20L !finish;
  Alcotest.(check int64) "no extra wait" 0L (Station.total_wait_ns st)

let test_station_capacity_rejects () =
  let e = Engine.create () in
  let st = Station.create ~capacity:2 e in
  let ran = ref 0 in
  let admit () = Station.try_submit st ~service:100L (fun () -> incr ran) in
  Alcotest.(check bool) "first admitted" true (admit () = `Accepted);
  Alcotest.(check bool) "second admitted" true (admit () = `Accepted);
  (* Queue is at capacity (one in service + one waiting): reject. *)
  Alcotest.(check bool) "third rejected" true (admit () = `Rejected);
  Alcotest.(check int) "queue never exceeds capacity" 2 (Station.queue_length st);
  Alcotest.(check int) "rejections counted" 1 (Station.jobs_rejected st);
  (* The retry-after hint is the server's drain time: two 100ns jobs. *)
  Alcotest.(check int64) "drain hint" 200L (Station.drain_ns st ~now:0L);
  Engine.run e;
  (* Rejected job never ran, and accepted-job accounting is untouched by
     the rejection: same busy/wait as two back-to-back jobs. *)
  Alcotest.(check int) "rejected job never runs" 2 !ran;
  Alcotest.(check int) "completions" 2 (Station.jobs_completed st);
  Alcotest.(check int64) "busy" 200L (Station.busy_ns st);
  Alcotest.(check int64) "wait" 100L (Station.total_wait_ns st);
  (* Drained: capacity is available again. *)
  Alcotest.(check bool) "admits after drain" true (admit () = `Accepted);
  Engine.run e;
  Alcotest.(check int) "late job ran" 3 !ran

let test_station_unbounded_baseline () =
  (* Regression pin for the bit-identical-default rule: a station built
     without [capacity] accepts everything through [try_submit] and behaves
     exactly like the pre-overload station. *)
  let e = Engine.create () in
  let st = Station.create e in
  let finish = ref [] in
  for _ = 1 to 3 do
    match Station.try_submit st ~service:100L (fun () ->
              finish := Engine.now e :: !finish)
    with
    | `Accepted -> ()
    | `Rejected -> Alcotest.fail "unbounded station rejected a job"
  done;
  Engine.run e;
  Alcotest.(check (list int64)) "back to back" [ 100L; 200L; 300L ]
    (List.rev !finish);
  Alcotest.(check (option int)) "no capacity" None (Station.capacity st);
  Alcotest.(check int) "no rejections" 0 (Station.jobs_rejected st);
  Alcotest.(check int64) "busy" 300L (Station.busy_ns st);
  Alcotest.(check int64) "wait" 300L (Station.total_wait_ns st)

let test_station_capacity_validated () =
  let e = Engine.create () in
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Station.create: capacity must be positive") (fun () ->
      ignore (Station.create ~capacity:0 e))

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "lifo ties" `Quick test_heap_lifo_ties;
          Alcotest.test_case "salted ties" `Quick test_heap_salted_ties;
          Alcotest.test_case "growth past hint" `Quick test_heap_growth;
          Alcotest.test_case "top accessors" `Quick test_heap_top_accessors;
          Alcotest.test_case "pop clears slot" `Quick test_heap_pop_clears_slot;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest heap_sorted_prop;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "zipf" `Quick test_rng_zipf_bounds_and_skew;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary moments" `Quick test_summary_moments;
          Alcotest.test_case "summary merge" `Quick test_summary_merge;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "order and filter" `Quick test_trace_order_and_filter;
          Alcotest.test_case "json lines" `Quick test_trace_json_lines;
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ( "station",
        [
          Alcotest.test_case "serializes" `Quick test_station_serializes;
          Alcotest.test_case "idle gap" `Quick test_station_idle_gap;
          Alcotest.test_case "capacity rejects" `Quick test_station_capacity_rejects;
          Alcotest.test_case "unbounded baseline" `Quick test_station_unbounded_baseline;
          Alcotest.test_case "capacity validated" `Quick test_station_capacity_validated;
        ] );
    ]
