(* Per-shard clone: the same state shape racy_global.ml keeps at module
   toplevel lives here in an instance record the topology builder
   creates once per shard — nothing module-global, so D007 is quiet. *)
type t = { cells : (int, int) Hashtbl.t; mutable hits : int }

let create () = { cells = Hashtbl.create 16; hits = 0 }

let touch t k =
  t.hits <- t.hits + 1;
  Hashtbl.replace t.cells k t.hits
