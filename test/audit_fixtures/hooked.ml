(* Snapshot-participating subsystem: same shape as unregistered.ml, but
   create registers a hook (the local Engine stub stands in for
   Lastcpu_sim.Engine — participation matches on the path suffix). *)
module Engine = struct
  let register_snapshot ~name:_ ~save:_ ~restore:_ = ()
end

type t = { mutable count : int }

let create () =
  let t = { count = 0 } in
  Engine.register_snapshot ~name:"hooked"
    ~save:(fun () -> string_of_int t.count)
    ~restore:(fun s -> t.count <- int_of_string s);
  t
