(* A stateful subsystem that never touches the snapshot protocol: both
   the directly mutable inner type and the wrapper reaching it through a
   field (the whole-program fixpoint) must be flagged. *)
module Inner = struct
  type t = { mutable depth : int }
end

type t = { inner : Inner.t; log : Buffer.t }

let create () = { inner = { Inner.depth = 0 }; log = Buffer.create 64 }

let bump t = t.inner.Inner.depth <- t.inner.Inner.depth + 1
