(* Deliberately racy: module-global mutable cells of every flavour the
   audit must catch — typed containers, refs, and state hidden behind a
   closure whose own visible type is an innocent arrow. *)
let table : (int, int) Hashtbl.t = Hashtbl.create 16
let counter = ref 0

let next_id =
  let state = ref 0 in
  fun () ->
    incr state;
    Hashtbl.replace table !state !state;
    !counter + !state
