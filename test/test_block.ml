(* Tests for the SSD's block service: handle-based virtual block devices
   over the shared data plane, with per-connection handle isolation. *)

module System = Lastcpu_core.System
module Fs = Lastcpu_fs.Fs
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Smart_nic = Lastcpu_devices.Smart_nic
module Memctl = Lastcpu_devices.Memctl
module File_client = Lastcpu_devices.File_client
module Ssd_proto = Lastcpu_devices.Ssd_proto

let rig () =
  let system = System.build () in
  let fs = Smart_ssd.fs (System.ssd system 0) in
  (match Fs.mkdir fs ~user:"root" ~mode:0o777 "/vol" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Fs.error_to_string e));
  (match System.boot system with Ok () -> () | Error e -> Alcotest.fail e);
  let dev = Smart_nic.device (System.nic system 0) in
  let mc = Memctl.id (System.memctl system) in
  let fc = ref None in
  File_client.connect dev ~memctl:mc ~pasid:(System.fresh_pasid system)
    ~shm_va:0x4000_0000L ~user:"blk" ~path_hint:"/vol/disk0" (fun r ->
      fc := Result.to_option r);
  System.run_until_idle system;
  match !fc with
  | Some fc -> (system, dev, mc, fc)
  | None -> Alcotest.fail "connect failed"

let sync system r =
  System.run_until_idle system;
  match !r with Some v -> v | None -> Alcotest.fail "request never completed"

let bopen system fc path =
  let r = ref None in
  File_client.bopen fc path (fun x -> r := Some x);
  match sync system r with
  | Ok h -> h
  | Error e -> Alcotest.fail ("bopen: " ^ e)

let test_block_roundtrip () =
  let system, _, _, fc = rig () in
  let h = bopen system fc "/vol/disk0" in
  let block = String.init 512 (fun i -> Char.chr (i land 0xff)) in
  let w = ref None in
  File_client.bwrite fc ~handle:h ~lba:7 block (fun x -> w := Some x);
  (match sync system w with Ok () -> () | Error e -> Alcotest.fail e);
  let r = ref None in
  File_client.bread fc ~handle:h ~lba:7 ~count:1 (fun x -> r := Some x);
  (match sync system r with
  | Ok data -> Alcotest.(check string) "block data" block data
  | Error e -> Alcotest.fail e);
  (* Unwritten blocks read as zeroes (zero-padded). *)
  let r2 = ref None in
  File_client.bread fc ~handle:h ~lba:100 ~count:2 (fun x -> r2 := Some x);
  match sync system r2 with
  | Ok data ->
    Alcotest.(check int) "two blocks" 1024 (String.length data);
    Alcotest.(check char) "zero" '\000' data.[0]
  | Error e -> Alcotest.fail e

let test_block_alignment_enforced () =
  let system, _, _, fc = rig () in
  let h = bopen system fc "/vol/disk0" in
  let w = ref None in
  File_client.bwrite fc ~handle:h ~lba:0 "short" (fun x -> w := Some x);
  match sync system w with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unaligned write accepted"

let test_bad_handle_rejected () =
  let system, _, _, fc = rig () in
  let r = ref None in
  File_client.bread fc ~handle:999 ~lba:0 ~count:1 (fun x -> r := Some x);
  (match sync system r with
  | Error "bad handle" -> ()
  | Error e -> Alcotest.fail ("unexpected: " ^ e)
  | Ok _ -> Alcotest.fail "bad handle accepted");
  (* Close invalidates. *)
  let h = bopen system fc "/vol/disk0" in
  let c = ref None in
  File_client.bclose fc ~handle:h (fun x -> c := Some x);
  (match sync system c with Ok () -> () | Error e -> Alcotest.fail e);
  let r2 = ref None in
  File_client.bread fc ~handle:h ~lba:0 ~count:1 (fun x -> r2 := Some x);
  match sync system r2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "closed handle accepted"

let test_handles_are_connection_scoped () =
  (* A handle opened on one connection is invalid on another, even for the
     same user and backing file: the device isolates instances (§2.1). *)
  let system, dev, mc, fc1 = rig () in
  let h = bopen system fc1 "/vol/disk0" in
  let fc2 = ref None in
  File_client.connect dev ~memctl:mc ~pasid:(System.fresh_pasid system)
    ~shm_va:0x4800_0000L ~user:"blk" ~path_hint:"/vol/disk0" (fun r ->
      fc2 := Result.to_option r);
  System.run_until_idle system;
  match !fc2 with
  | None -> Alcotest.fail "second connect failed"
  | Some fc2 ->
    let r = ref None in
    File_client.bread fc2 ~handle:h ~lba:0 ~count:1 (fun x -> r := Some x);
    (match sync system r with
    | Error "bad handle" -> ()
    | Error e -> Alcotest.fail ("unexpected: " ^ e)
    | Ok _ -> Alcotest.fail "cross-connection handle accepted")

let test_block_data_durable_via_fs () =
  (* Block writes land in the backing file: visible through the file API
     and thus durable through the same FTL. *)
  let system, _, _, fc = rig () in
  let h = bopen system fc "/vol/disk0" in
  let block = String.make 512 'B' in
  let w = ref None in
  File_client.bwrite fc ~handle:h ~lba:2 block (fun x -> w := Some x);
  (match sync system w with Ok () -> () | Error e -> Alcotest.fail e);
  let fs = Smart_ssd.fs (System.ssd system 0) in
  match Fs.read fs ~user:"root" "/vol/disk0" ~off:1024 ~len:512 with
  | Ok data -> Alcotest.(check string) "backing file holds the block" block data
  | Error e -> Alcotest.fail (Fs.error_to_string e)

let test_block_proto_roundtrip () =
  let reqs =
    [
      Ssd_proto.Bopen { path = "/vol/x"; block_size = 4096 };
      Ssd_proto.Bread { handle = 3; lba = 99; count = 8 };
      Ssd_proto.Bwrite { handle = 3; lba = 0; data = String.make 512 'x' };
      Ssd_proto.Bclose { handle = 3 };
    ]
  in
  List.iter
    (fun r ->
      match Ssd_proto.decode_request (Ssd_proto.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  match Ssd_proto.decode_response (Ssd_proto.encode_response (Ssd_proto.Ok_handle 7)) with
  | Ok (Ssd_proto.Ok_handle 7) -> ()
  | _ -> Alcotest.fail "handle response roundtrip"

(* Zero-copy Ssd_proto variants: the into/view codecs must agree byte-for-
   byte with the string codecs, and the sizers with the encoders — the
   data plane trusts [request_size] to reserve virtqueue slot space. *)
let test_ssd_proto_view_roundtrip () =
  let module Slice = Lastcpu_proto.Slice in
  let reqs =
    [
      Ssd_proto.Create { path = "/vol/a"; mode = 0o644 };
      Ssd_proto.Unlink { path = "/vol/a" };
      Ssd_proto.Mkdir { path = "/vol/d"; mode = 0o755 };
      Ssd_proto.Read { path = "/vol/a"; off = 17; len = 4096 };
      Ssd_proto.Write { path = "/vol/a"; off = 0; data = String.make 100 '\xfe' };
      Ssd_proto.Stat { path = "/vol/a" };
      Ssd_proto.Readdir { path = "/vol" };
      Ssd_proto.Truncate { path = "/vol/a"; len = 12 };
      Ssd_proto.Fsync { path = "/vol/a" };
      Ssd_proto.Rename { from_path = "/vol/a"; to_path = "/vol/b" };
      Ssd_proto.Bopen { path = "/vol/x"; block_size = 4096 };
      Ssd_proto.Bread { handle = 3; lba = 99; count = 8 };
      Ssd_proto.Bwrite { handle = 3; lba = 0; data = String.make 512 'x' };
      Ssd_proto.Bclose { handle = 3 };
    ]
  in
  List.iter
    (fun r ->
      let str = Ssd_proto.encode_request r in
      Alcotest.(check int) "request_size = encode length" (String.length str)
        (Ssd_proto.request_size r);
      let v = Slice.create (String.length str + 5) in
      let n = Ssd_proto.encode_request_into r v ~pos:5 in
      Alcotest.(check int) "encode_into returns the sizer's answer"
        (Ssd_proto.request_size r) n;
      Alcotest.(check string) "same bytes as the string codec" str
        (Slice.to_string v ~pos:5 ~len:n);
      match Ssd_proto.decode_request_view ~pos:5 ~len:n v with
      | Ok r' -> Alcotest.(check bool) "view decode roundtrips" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  let resps =
    [
      Ssd_proto.Ok_unit;
      Ssd_proto.Ok_data (String.make 4096 '\x5a');
      Ssd_proto.Ok_names [ "a"; "b"; "longer-name" ];
      Ssd_proto.Ok_stat { size = 123; kind_dir = false; owner = "app1"; mode = 0o644 };
      Ssd_proto.Ok_handle 7;
      Ssd_proto.Err "no such file";
    ]
  in
  List.iter
    (fun r ->
      let str = Ssd_proto.encode_response r in
      Alcotest.(check int) "response_size = encode length" (String.length str)
        (Ssd_proto.response_size r);
      let v = Slice.create (String.length str) in
      let n = Ssd_proto.encode_response_into r v ~pos:0 in
      Alcotest.(check string) "same bytes as the string codec" str
        (Slice.to_string v ~pos:0 ~len:n);
      match Ssd_proto.decode_response_view v with
      | Ok r' -> Alcotest.(check bool) "view decode roundtrips" true (r = r')
      | Error e -> Alcotest.fail e)
    resps;
  (* A truncated window must fail cleanly, not read past ~len. *)
  let str = Ssd_proto.encode_request (Ssd_proto.Stat { path = "/vol/a" }) in
  let v = Slice.of_string str in
  match Ssd_proto.decode_request_view ~pos:0 ~len:(String.length str - 1) v with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated view decoded"

let () =
  Alcotest.run "block"
    [
      ( "block service",
        [
          Alcotest.test_case "proto roundtrip" `Quick test_block_proto_roundtrip;
          Alcotest.test_case "proto view roundtrip" `Quick
            test_ssd_proto_view_roundtrip;
          Alcotest.test_case "read/write roundtrip" `Quick test_block_roundtrip;
          Alcotest.test_case "alignment enforced" `Quick test_block_alignment_enforced;
          Alcotest.test_case "bad handle" `Quick test_bad_handle_rejected;
          Alcotest.test_case "connection-scoped handles" `Quick
            test_handles_are_connection_scoped;
          Alcotest.test_case "durable via fs" `Quick test_block_data_durable_via_fs;
        ] );
    ]
