(* Crash-survivable simulation: the snapshot container format (framing,
   CRC rejection, generation fallback), the engine's checkpoint-hook
   registry, the WAL watermark interplay (no double-apply after a
   restore), breaker and crash-window resume semantics, the Checkpoint
   orchestrator's mismatch handling, and the T16 kill-resume contract:
   a killed-and-resumed run is bit-identical to an uninterrupted one. *)

module Engine = Lastcpu_sim.Engine
module Snapshot = Lastcpu_sim.Snapshot
module Faults = Lastcpu_sim.Faults
module Metrics = Lastcpu_sim.Metrics
module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Physmem = Lastcpu_mem.Physmem
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module Smart_ssd = Lastcpu_devices.Smart_ssd
module Store = Lastcpu_kv.Store
module Wal = Lastcpu_kv.Wal
module Kv_app = Lastcpu_kv.Kv_app
module Kv_proto = Lastcpu_kv.Kv_proto
module System = Lastcpu_core.System
module Scenario = Lastcpu_core.Scenario_kvs
module Checkpoint = Lastcpu_core.Checkpoint
module Experiments = Lastcpu_core.Experiments

let temp_snapshot () =
  let path = Filename.temp_file "lastcpu-snap-test" ".snap" in
  Sys.remove path;
  path

let cleanup path =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; Snapshot.previous_generation path ]

(* --- container format --------------------------------------------------- *)

let test_codec_roundtrip () =
  let w = Snapshot.W.create () in
  Snapshot.W.u8 w 0xAB;
  Snapshot.W.u32 w 123_456_789;
  Snapshot.W.i64 w (-77L);
  Snapshot.W.varint w 300;
  Snapshot.W.vint w (-42);
  Snapshot.W.bool w true;
  Snapshot.W.float w 2.5;
  Snapshot.W.string w "hello \x00 binary";
  Snapshot.W.list w Snapshot.W.string [ "a"; "bb"; "" ];
  Snapshot.W.array w Snapshot.W.varint [| 1; 0; 9999 |];
  Snapshot.W.option w Snapshot.W.i64 (Some 5L);
  Snapshot.W.option w Snapshot.W.i64 None;
  let r = Snapshot.R.of_string (Snapshot.W.contents w) in
  Alcotest.(check int) "u8" 0xAB (Snapshot.R.u8 r);
  Alcotest.(check int) "u32" 123_456_789 (Snapshot.R.u32 r);
  Alcotest.(check int64) "i64" (-77L) (Snapshot.R.i64 r);
  Alcotest.(check int) "varint" 300 (Snapshot.R.varint r);
  Alcotest.(check int) "vint" (-42) (Snapshot.R.vint r);
  Alcotest.(check bool) "bool" true (Snapshot.R.bool r);
  Alcotest.(check (float 0.0)) "float" 2.5 (Snapshot.R.float r);
  Alcotest.(check string) "string" "hello \x00 binary" (Snapshot.R.string r);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ]
    (Snapshot.R.list r Snapshot.R.string);
  Alcotest.(check (array int)) "array" [| 1; 0; 9999 |]
    (Snapshot.R.array r Snapshot.R.varint);
  Alcotest.(check (option int64)) "some" (Some 5L)
    (Snapshot.R.option r Snapshot.R.i64);
  Alcotest.(check (option int64)) "none" None
    (Snapshot.R.option r Snapshot.R.i64);
  Alcotest.(check bool) "eof" true (Snapshot.R.eof r)

let sections =
  [
    { Snapshot.name = "alpha"; body = "aaaa" };
    { Snapshot.name = "beta"; body = String.make 300 'b' };
  ]

let test_encode_decode () =
  let bytes = Snapshot.encode sections in
  match Snapshot.decode bytes with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
    Alcotest.(check (option string)) "alpha" (Some "aaaa")
      (Snapshot.find decoded "alpha");
    Alcotest.(check (option string)) "beta"
      (Some (String.make 300 'b'))
      (Snapshot.find decoded "beta");
    Alcotest.(check (option string)) "missing" None
      (Snapshot.find decoded "gamma")

let test_bit_flip_rejected () =
  let bytes = Bytes.of_string (Snapshot.encode sections) in
  (* Flip one bit in the middle of a section body: the per-section CRC
     must catch it. *)
  let i = Bytes.length bytes / 2 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x10));
  match Snapshot.decode (Bytes.to_string bytes) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit flip accepted"

let test_truncation_rejected () =
  let bytes = Snapshot.encode sections in
  for keep = 0 to min 64 (String.length bytes - 1) do
    match Snapshot.decode (String.sub bytes 0 keep) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %d-byte prefix" keep)
  done

let test_generations_and_fallback () =
  let path = temp_snapshot () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let gen n = [ { Snapshot.name = "n"; body = string_of_int n } ] in
      Snapshot.write ~path (gen 1);
      (match Snapshot.load ~path with
      | Ok (Snapshot.Primary, s) ->
        Alcotest.(check (option string)) "gen 1" (Some "1") (Snapshot.find s "n")
      | Ok (Snapshot.Previous, _) -> Alcotest.fail "fresh write read as previous"
      | Error e -> Alcotest.fail e);
      Snapshot.write ~path (gen 2);
      (match Snapshot.load ~path with
      | Ok (Snapshot.Primary, s) ->
        Alcotest.(check (option string)) "gen 2" (Some "2") (Snapshot.find s "n")
      | _ -> Alcotest.fail "second write not primary");
      (* A torn third write (killed mid-checkpoint) must fall back to the
         displaced second generation, not the first. *)
      Snapshot.write_torn ~path ~keep_bytes:10 (gen 3);
      (match Snapshot.load ~path with
      | Ok (Snapshot.Previous, s) ->
        Alcotest.(check (option string)) "fallback" (Some "2")
          (Snapshot.find s "n")
      | Ok (Snapshot.Primary, _) -> Alcotest.fail "torn primary accepted"
      | Error e -> Alcotest.fail e);
      (* Both generations bad: a combined error, not an exception. *)
      let oc = open_out (Snapshot.previous_generation path) in
      output_string oc "junk";
      close_out oc;
      match Snapshot.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "two bad generations accepted")

(* --- engine hook registry ------------------------------------------------ *)

let test_hook_registry () =
  let engine = Engine.create () in
  let noop_save () = "" in
  let noop_restore _ = () in
  Engine.register_snapshot engine ~name:"b" ~save:noop_save
    ~restore:noop_restore;
  Engine.register_snapshot engine ~name:"a" ~save:noop_save
    ~restore:noop_restore;
  Alcotest.(check (list string)) "registration order kept" [ "b"; "a" ]
    (List.map (fun (n, _, _) -> n) (Engine.snapshot_hooks engine));
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Engine.register_snapshot: duplicate hook b") (fun () ->
      Engine.register_snapshot engine ~name:"b" ~save:noop_save
        ~restore:noop_restore)

let test_save_requires_quiescence () =
  let engine = Engine.create () in
  Engine.schedule engine ~delay:10L (fun () -> ());
  Alcotest.check_raises "volatile event queued"
    (Invalid_argument "Engine.save_state: queue has volatile events")
    (fun () -> ignore (Engine.save_state engine));
  Engine.run_until_quiescent engine;
  ignore (Engine.save_state engine)

(* --- WAL watermark: no double-apply after restore (satellite) ----------- *)

let put store key value =
  Store.put store ~key ~value (function
    | Ok () -> ()
    | Error e -> Alcotest.fail e)

let get store key =
  let out = ref None in
  Store.get store key (fun v -> out := v);
  !out

let test_watermark_skips_replayed_prefix () =
  (* Donor store: the state a checkpoint captured — including a key the
     log prefix cannot reproduce (post-compaction reality) — with a
     watermark covering the first 3 log records. *)
  let donor = Store.create (Store.memory_backend ()) in
  put donor "x" "7";
  Store.set_applied_watermark donor 3;
  let w = Snapshot.W.create () in
  Store.save w donor;
  let saved = Snapshot.W.contents w in
  (* The on-disk log: 3 records the snapshot already reflects, one fresh
     record past the watermark, and a torn tail (crash mid-append). *)
  let backend = Store.memory_backend () in
  let logged = ref 0 in
  List.iter
    (fun r ->
      backend.Store.append (Wal.encode r) (function
        | Ok () -> incr logged
        | Error e -> Alcotest.fail e))
    [
      Wal.Put { key = "a"; value = "1" };
      Wal.Put { key = "b"; value = "2" };
      Wal.Del { key = "a" };
      Wal.Put { key = "c"; value = "3" };
    ];
  backend.Store.append "\xff\xff\xfftorn" (fun _ -> ());
  Alcotest.(check int) "log built" 4 !logged;
  (* Restore-then-recover: only the suffix past the watermark replays; the
     restored index is NOT reset, so "x" survives. *)
  let s = Store.create backend in
  Store.restore (Snapshot.R.of_string saved) s;
  Alcotest.(check int) "watermark restored" 3 (Store.applied_watermark s);
  let applied = ref (-1) in
  Store.recover s (function
    | Ok n -> applied := n
    | Error e -> Alcotest.fail e);
  Alcotest.(check int) "only the fresh suffix applied" 1 !applied;
  Alcotest.(check (option string)) "restored key kept" (Some "7") (get s "x");
  Alcotest.(check (option string)) "fresh record applied" (Some "3")
    (get s "c");
  Alcotest.(check (option string)) "pre-watermark records not re-applied" None
    (get s "a");
  Alcotest.(check int) "watermark advanced to log length" 4
    (Store.applied_watermark s);
  (* First-boot semantics unchanged: a fresh store (watermark 0) resets
     and replays everything, torn tail silently discarded. *)
  let fresh = Store.create backend in
  let n = ref (-1) in
  Store.recover fresh (function
    | Ok k -> n := k
    | Error e -> Alcotest.fail e);
  Alcotest.(check int) "full replay" 4 !n;
  Alcotest.(check (option string)) "del replayed" None (get fresh "a");
  Alcotest.(check (option string)) "puts replayed" (Some "2") (get fresh "b");
  Store.set_applied_watermark fresh 0;
  Alcotest.check_raises "negative watermark"
    (Invalid_argument "set_applied_watermark: negative") (fun () ->
      Store.set_applied_watermark fresh (-1))

(* --- breaker resume (satellite) ------------------------------------------ *)

(* The deterministic builder for the breaker rig: a client with an armed
   circuit breaker and a peer that never answers. Checkpoint restore
   overlays state onto a fresh instance of exactly this. *)
let breaker_rig () =
  let engine = Engine.create () in
  let bus = Sysbus.create engine in
  let mem = Physmem.create () in
  let blackhole = Device.create bus ~mem ~name:"blackhole" () in
  Device.start blackhole;
  let client = Device.create bus ~mem ~name:"client" () in
  Device.start client;
  Engine.run engine;
  Device.enable_circuit_breaker client ~threshold:2 ~cooldown_ns:1_000_000L;
  (engine, client, Device.id blackhole)

let test_breaker_resumes_probe_schedule () =
  let path = temp_snapshot () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let engine_a, client_a, peer_a = breaker_rig () in
      let req engine client peer =
        Device.request client ~timeout:10_000L ~dst:(Types.Device peer)
          (Message.App_message { tag = "ping"; body = "" })
          (fun _ -> ());
        Engine.run engine
      in
      (* Two timeouts: breaker opens (fast-fail until open-time + 1ms). *)
      req engine_a client_a peer_a;
      req engine_a client_a peer_a;
      Alcotest.(check bool) "open before save" true
        (Device.breaker_state client_a ~peer:peer_a = `Open);
      Alcotest.(check bool) "quiescent" true (Engine.quiescent engine_a);
      Checkpoint.save ~path ~tag:"breaker" (Checkpoint.Single engine_a);
      (* Fresh rig, overlay the checkpoint. *)
      let engine_b, client_b, peer_b = breaker_rig () in
      (match
         Checkpoint.restore ~path ~tag:"breaker" (Checkpoint.Single engine_b)
       with
      | Ok Snapshot.Primary -> ()
      | Ok Snapshot.Previous -> Alcotest.fail "unexpected fallback"
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "still open after restore" true
        (Device.breaker_state client_b ~peer:peer_b = `Open);
      Alcotest.(check int64) "clock restored" (Engine.now engine_a)
        (Engine.now engine_b);
      Alcotest.(check int) "open count restored" 1
        (Device.breaker_opens client_b);
      (* Inside the cooldown the restored breaker fast-fails locally. *)
      let sent_before = Device.requests_sent client_b in
      req engine_b client_b peer_b;
      Alcotest.(check int) "fast fail, nothing on the wire" sent_before
        (Device.requests_sent client_b);
      Alcotest.(check int) "fast fail counted" 1
        (Device.breaker_fast_fails client_b);
      (* Past the cooldown the next request is the half-open probe: it
         reaches the wire, fails against the dead peer, and reopens —
         the probe schedule survived the restore intact. *)
      Engine.schedule engine_b ~delay:2_000_000L (fun () ->
          req engine_b client_b peer_b);
      Engine.run engine_b;
      Alcotest.(check int) "probe hit the wire" (sent_before + 1)
        (Device.requests_sent client_b);
      Alcotest.(check bool) "probe failure reopened" true
        (Device.breaker_state client_b ~peer:peer_b = `Open);
      Alcotest.(check int) "reopen counted" 2 (Device.breaker_opens client_b))

(* --- crash-window remainder (satellite) ---------------------------------- *)

let crash_rig () =
  let spec =
    {
      System.default_spec with
      System.fault_plan =
        {
          Faults.zero with
          Faults.crashes =
            [ { Faults.device = "ssd0"; at_ns = 1_000_000L; down_ns = 10_000_000L } ];
        };
    }
  in
  let system = System.build ~spec () in
  (match System.boot system with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("boot: " ^ e));
  system

let test_crash_window_survives_restore () =
  let path = temp_snapshot () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let a = crash_rig () in
      let engine_a = System.engine a in
      let ssd_a = Smart_ssd.id (System.ssd a 0) in
      (* Into the middle of the crash window: the crash static has fired,
         the revive static (absolute time 11ms) is still pending. *)
      System.run_for a (Int64.sub 5_000_000L (Engine.now engine_a));
      Alcotest.(check bool) "down mid-window" false
        (Sysbus.is_live (System.bus a) ssd_a);
      Alcotest.(check bool) "quiescent mid-window" true
        (Engine.quiescent engine_a);
      Checkpoint.save ~path ~tag:"crash" (Checkpoint.Single engine_a);
      (* Rebuild: the fresh rig re-schedules BOTH statics (crash at 1ms,
         revive at 11ms). The restore's queue filter must drop the
         already-fired crash and keep the revive at its absolute time. *)
      let b = crash_rig () in
      let engine_b = System.engine b in
      let ssd_b = Smart_ssd.id (System.ssd b 0) in
      (match Checkpoint.restore ~path ~tag:"crash" (Checkpoint.Single engine_b)
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check int64) "clock restored mid-window" 5_000_000L
        (Engine.now engine_b);
      Alcotest.(check bool) "still down after restore" false
        (Sysbus.is_live (System.bus b) ssd_b);
      (* The remainder of the window completes on the original absolute
         schedule: still down just before the 11ms revive, and the
         revive-plus-rejoin sequence lands the restored machine on exactly
         the same clock as an uninterrupted control run. *)
      Engine.run ~until:10_999_999L engine_b;
      Alcotest.(check bool) "still down just before the revive" false
        (Sysbus.is_live (System.bus b) ssd_b);
      Engine.run engine_b;
      Alcotest.(check bool) "revived after the window" true
        (Sysbus.is_live (System.bus b) ssd_b);
      let c = crash_rig () in
      Engine.run (System.engine c);
      Alcotest.(check bool) "control revived" true
        (Sysbus.is_live (System.bus c) (Smart_ssd.id (System.ssd c 0)));
      Alcotest.(check int64) "rejoin schedule identical to uninterrupted run"
        (Engine.now (System.engine c))
        (Engine.now engine_b))

(* --- checkpoint orchestrator mismatches ---------------------------------- *)

let test_checkpoint_mismatches () =
  let path = temp_snapshot () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let engine = Engine.create () in
      Checkpoint.save ~path ~tag:"exp-a" (Checkpoint.Single engine);
      let fresh = Engine.create () in
      (match
         Checkpoint.restore ~path ~tag:"exp-b" (Checkpoint.Single fresh)
       with
      | Error e ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "tag named in error" true (contains e "exp-a")
      | Ok _ -> Alcotest.fail "tag mismatch accepted");
      (* A topology with an extra hook the snapshot has no section for. *)
      let extra = Engine.create () in
      Engine.register_snapshot extra ~name:"late-subsystem"
        ~save:(fun () -> "")
        ~restore:(fun _ -> ());
      match Checkpoint.restore ~path ~tag:"exp-a" (Checkpoint.Single extra) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "hook without a section accepted")

(* --- whole-machine round trip -------------------------------------------- *)

(* Full-coverage builder: auth + console + accelerator alongside the KVS,
   so every registered subsystem hook is exercised by the round trip. *)
let full_spec =
  {
    System.default_spec with
    System.with_auth = true;
    users = [ ("kvs", "kvs-secret") ];
    with_console = true;
    accel_count = 1;
  }

let full_rig () =
  match Scenario.run ~spec:full_spec ~smoke_ops:0 () with
  | Error e -> Alcotest.fail ("scenario: " ^ e)
  | Ok outcome -> (outcome.Scenario.system, outcome.Scenario.app)

let drive system app ~tag ~ops =
  for i = 1 to ops do
    let key = Printf.sprintf "%s-%03d" tag i in
    Kv_app.local_op app (Kv_proto.Put (key, "v" ^ key)) (fun r ->
        if r <> Kv_proto.Done then Alcotest.fail "put failed");
    System.run_until_idle system;
    Kv_app.local_op app (Kv_proto.Get key) (fun r ->
        match r with
        | Kv_proto.Value (Some _) -> ()
        | _ -> Alcotest.fail "get failed")
  done;
  System.run_until_idle system

let digest_of system = Metrics.digest (Engine.metrics (System.engine system))

let test_full_system_roundtrip () =
  let path = temp_snapshot () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let sys_a, app_a = full_rig () in
      drive sys_a app_a ~tag:"pre" ~ops:20;
      Alcotest.(check bool) "quiescent" true
        (Engine.quiescent (System.engine sys_a));
      Checkpoint.save ~path ~tag:"full" (Checkpoint.Single (System.engine sys_a));
      let sys_b, app_b = full_rig () in
      (match
         Checkpoint.restore ~path ~tag:"full"
           (Checkpoint.Single (System.engine sys_b))
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      (* State equality at the restore point... *)
      Alcotest.(check int64) "digest equal after restore" (digest_of sys_a)
        (digest_of sys_b);
      Alcotest.(check int64) "clock equal" (Engine.now (System.engine sys_a))
        (Engine.now (System.engine sys_b));
      (* ...and behavioral equivalence past it: the same continued
         workload produces the same observable state on both machines. *)
      drive sys_a app_a ~tag:"post" ~ops:20;
      drive sys_b app_b ~tag:"post" ~ops:20;
      Alcotest.(check int64) "digest equal after continuation"
        (digest_of sys_a) (digest_of sys_b);
      Alcotest.(check int) "events equal after continuation"
        (Engine.events_executed (System.engine sys_a))
        (Engine.events_executed (System.engine sys_b)))

(* --- T16: kill-resume soak ----------------------------------------------- *)

let journal_of (r : Experiments.t16_result) =
  List.concat_map
    (fun system -> Engine.sanitizer_journal (System.engine system))
    (Array.to_list r.Experiments.t16_systems)

let test_t16_kill_resume_bit_identical () =
  let path = temp_snapshot () in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let seed = 42L in
      let full = Experiments.t16_soak ~sanitize:true ~seed () in
      let killed =
        Experiments.t16_soak ~sanitize:true ~seed ~snapshot_path:path
          ~stop_after:Experiments.t16_kill_boundary ~torn_final:true ()
      in
      Alcotest.(check int) "killed after boundary 3"
        Experiments.t16_kill_boundary killed.Experiments.t16_segments_run;
      let resumed =
        Experiments.t16_soak ~sanitize:true ~seed ~snapshot_path:path
          ~resume:true ()
      in
      (match resumed.Experiments.t16_restored with
      | Some Snapshot.Previous -> ()
      | Some Snapshot.Primary ->
        Alcotest.fail "torn primary restored instead of rejected"
      | None -> Alcotest.fail "resume leg did not restore");
      Alcotest.(check int64) "digest bit-identical"
        full.Experiments.t16_digest resumed.Experiments.t16_digest;
      Alcotest.(check int) "event count identical" full.Experiments.t16_events
        resumed.Experiments.t16_events;
      Alcotest.(check int64) "virtual clock identical"
        full.Experiments.t16_elapsed resumed.Experiments.t16_elapsed;
      (* The sanitizer journal — every multi-event tick's observable-state
         hash, restored from the snapshot and extended by the re-run —
         must be bit-identical too, not just the end state. *)
      Alcotest.(check int) "journal length identical"
        (List.length (journal_of full))
        (List.length (journal_of resumed));
      Alcotest.(check bool) "journal bit-identical" true
        (journal_of full = journal_of resumed);
      (* The breaker actually exercised its crash window along the way. *)
      let nic_dev system =
        Lastcpu_devices.Smart_nic.device (System.nic system 0)
      in
      Alcotest.(check bool) "breaker opened during the soak" true
        (Device.breaker_opens (nic_dev resumed.Experiments.t16_systems.(0)) > 0))

let () =
  Alcotest.run "snapshot"
    [
      ( "format",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
          Alcotest.test_case "bit flip rejected" `Quick test_bit_flip_rejected;
          Alcotest.test_case "truncation rejected" `Quick
            test_truncation_rejected;
          Alcotest.test_case "generations and fallback" `Quick
            test_generations_and_fallback;
        ] );
      ( "engine hooks",
        [
          Alcotest.test_case "registry" `Quick test_hook_registry;
          Alcotest.test_case "save requires quiescence" `Quick
            test_save_requires_quiescence;
        ] );
      ( "wal watermark",
        [
          Alcotest.test_case "no double-apply after restore" `Quick
            test_watermark_skips_replayed_prefix;
        ] );
      ( "resume semantics",
        [
          Alcotest.test_case "breaker probe schedule" `Quick
            test_breaker_resumes_probe_schedule;
          Alcotest.test_case "crash-window remainder" `Quick
            test_crash_window_survives_restore;
          Alcotest.test_case "orchestrator mismatches" `Quick
            test_checkpoint_mismatches;
        ] );
      ( "whole machine",
        [
          Alcotest.test_case "full-system roundtrip" `Quick
            test_full_system_roundtrip;
        ] );
      ( "t16",
        [
          Alcotest.test_case "kill-resume bit-identical" `Slow
            test_t16_kill_resume_bit_identical;
        ] );
    ]
