(* Telemetry registry: handles, snapshots, spans and legacy-accessor parity. *)

module Engine = Lastcpu_sim.Engine
module Metrics = Lastcpu_sim.Metrics
module Stats = Lastcpu_sim.Stats
module Trace = Lastcpu_sim.Trace
module Sysbus = Lastcpu_bus.Sysbus
module Device = Lastcpu_device.Device
module System = Lastcpu_core.System
module Scenario = Lastcpu_core.Scenario_kvs
module Smart_nic = Lastcpu_devices.Smart_nic
module Smart_ssd = Lastcpu_devices.Smart_ssd

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- registry basics -------------------------------------------------------- *)

let test_handles () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~actor:"a" ~name:"ops" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check "counter" 5 (Metrics.counter_value c);
  (* Same key resolves to the same underlying cell. *)
  let c' = Metrics.counter m ~actor:"a" ~name:"ops" in
  Metrics.incr c';
  check "aliased handle" 6 (Metrics.counter_value c);
  check "counter_read" 6 (Metrics.counter_read m ~actor:"a" ~name:"ops");
  check "absent read" 0 (Metrics.counter_read m ~actor:"a" ~name:"nope");
  (* Re-registering under a different instrument type is a bug. *)
  (match Metrics.gauge m ~actor:"a" ~name:"ops" with
  | _ -> Alcotest.fail "type mismatch accepted"
  | exception Invalid_argument _ -> ());
  let g = Metrics.gauge m ~actor:"a" ~name:"level" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value g);
  let h = Metrics.histogram m ~actor:"b" ~name:"lat_ns" in
  Metrics.observe h 100.;
  Metrics.observe h 200.;
  check "observations" 2 (Metrics.observations h);
  check "size" 3 (Metrics.size m)

let test_claim_actor () =
  let m = Metrics.create () in
  Alcotest.(check string) "first" "dev" (Metrics.claim_actor m "dev");
  Alcotest.(check string) "second" "dev#2" (Metrics.claim_actor m "dev");
  Alcotest.(check string) "third" "dev#3" (Metrics.claim_actor m "dev")

let test_snapshot_sorted () =
  let m = Metrics.create () in
  ignore (Metrics.counter m ~actor:"zeta" ~name:"z");
  ignore (Metrics.counter m ~actor:"alpha" ~name:"b");
  ignore (Metrics.counter m ~actor:"alpha" ~name:"a");
  let keys = List.map (fun (a, n, _) -> (a, n)) (Metrics.snapshot m) in
  Alcotest.(check (list (pair string string)))
    "sorted by actor then instrument"
    [ ("alpha", "a"); ("alpha", "b"); ("zeta", "z") ]
    keys;
  Alcotest.(check (list string)) "actors" [ "alpha"; "zeta" ] (Metrics.actors m)

(* --- histogram edge cases ---------------------------------------------------- *)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  check "count" 0 (Stats.Histogram.count h);
  Alcotest.(check (float 0.0)) "p50 of empty" 0. (Stats.Histogram.percentile h 50.)

let test_histogram_underflow () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 0.5;
  Stats.Histogram.add h (-3.);
  check "count" 2 (Stats.Histogram.count h);
  let p = Stats.Histogram.percentile h 99. in
  checkb "underflow bucket edge" true (p >= 0. && p <= 1.0)

let test_histogram_single () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 1234.;
  let p = Stats.Histogram.percentile h 50. in
  (* Log-bucketed: the answer is the bucket's upper edge, within the
     per-decade relative error of the true value. *)
  checkb "single value in bucket" true (p >= 1234. && p <= 1234. *. 1.1)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.add a 10.;
  Stats.Histogram.add b 1000.;
  let ab = Stats.Histogram.merge a b in
  check "merged count" 2 (Stats.Histogram.count ab);
  let empty = Stats.Histogram.merge (Stats.Histogram.create ()) (Stats.Histogram.create ()) in
  check "merged empty" 0 (Stats.Histogram.count empty)

(* --- determinism -------------------------------------------------------------- *)

let scenario_exn () =
  match Scenario.run () with
  | Ok outcome -> outcome
  | Error e -> Alcotest.fail ("scenario: " ^ e)

let test_snapshot_deterministic () =
  let snap () =
    let outcome = scenario_exn () in
    Metrics.to_json (Engine.metrics (System.engine outcome.Scenario.system))
  in
  Alcotest.(check string) "identical seeded runs" (snap ()) (snap ())

(* --- spans --------------------------------------------------------------------- *)

let test_span_pairing () =
  let outcome = scenario_exn () in
  let system = outcome.Scenario.system in
  System.run_until_idle system;
  let trace = Engine.trace (System.engine system) in
  let begins = Trace.find_all trace ~kind:Trace.span_begin_kind in
  let ends = Trace.find_all trace ~kind:Trace.span_end_kind in
  checkb "spans were recorded" true (List.length begins > 0);
  check "every begin has an end" (List.length begins) (List.length ends);
  check "no dangling spans" 0 (Trace.open_span_count trace);
  let begin_keys =
    List.fold_left
      (fun acc (e : Trace.entry) -> e.Trace.detail :: acc)
      [] begins
  in
  List.iter
    (fun (e : Trace.entry) ->
      checkb "end matches a begin" true (List.mem e.Trace.detail begin_keys))
    ends;
  (* Durations landed in the registry as <name>_ns histograms. *)
  let m = Engine.metrics (System.engine system) in
  match Metrics.find m ~actor:"memctl" ~name:"request_ns" with
  | Some (Metrics.Histogram_v r) -> checkb "memctl request span timed" true (r.Stats.n > 0)
  | _ -> Alcotest.fail "memctl/request_ns histogram missing"

(* --- legacy-accessor parity ------------------------------------------------------ *)

let test_accessor_parity () =
  let outcome = scenario_exn () in
  let system = outcome.Scenario.system in
  let m = Engine.metrics (System.engine system) in
  let bus = System.bus system in
  let c = Sysbus.counters bus in
  let bus_read name = Metrics.counter_read m ~actor:(Sysbus.actor bus) ~name in
  check "routed" c.Sysbus.routed (bus_read "routed");
  check "broadcasts" c.Sysbus.broadcasts (bus_read "broadcasts");
  check "maps_programmed" c.Sysbus.maps_programmed (bus_read "maps_programmed");
  check "unmaps" c.Sysbus.unmaps (bus_read "unmaps");
  check "token_failures" c.Sysbus.token_failures (bus_read "token_failures");
  check "undeliverable" c.Sysbus.undeliverable (bus_read "undeliverable");
  check "control_bytes" c.Sysbus.control_bytes (bus_read "control_bytes");
  checkb "bus routed traffic" true (c.Sysbus.routed > 0);
  let dev = Smart_nic.device (System.nic system 0) in
  let dev_read name = Metrics.counter_read m ~actor:(Device.actor dev) ~name in
  check "handled" (Device.messages_handled dev) (dev_read "handled");
  check "sent" (Device.requests_sent dev) (dev_read "sent");
  check "faults" (Device.fault_count dev) (dev_read "faults");
  checkb "device handled traffic" true (Device.messages_handled dev > 0);
  let ssd = System.ssd system 0 in
  check "requests_served"
    (Smart_ssd.requests_served ssd)
    (Metrics.counter_read m ~actor:(Device.actor (Smart_ssd.device ssd))
       ~name:"requests_served");
  checkb "ssd served requests" true (Smart_ssd.requests_served ssd > 0)

(* --- export sanity ---------------------------------------------------------------- *)

let test_export () =
  let outcome = scenario_exn () in
  let m = Engine.metrics (System.engine outcome.Scenario.system) in
  checkb "at least 10 instruments" true (Metrics.size m >= 10);
  checkb "at least 4 actors" true (List.length (Metrics.actors m) >= 4);
  let prom = Metrics.to_prometheus m in
  checkb "prometheus non-empty" true (String.length prom > 0);
  let json = Metrics.to_json m in
  checkb "json wrapper" true
    (String.length json > 2
    && String.sub json 0 11 = "{\"metrics\":"
    && json.[String.length json - 1] = '}')

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "handles" `Quick test_handles;
          Alcotest.test_case "claim_actor" `Quick test_claim_actor;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "underflow" `Quick test_histogram_underflow;
          Alcotest.test_case "single value" `Quick test_histogram_single;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded snapshot" `Quick test_snapshot_deterministic ] );
      ( "spans",
        [ Alcotest.test_case "pairing on figure-2 run" `Quick test_span_pairing ] );
      ( "parity",
        [ Alcotest.test_case "legacy accessors" `Quick test_accessor_parity ] );
      ( "export",
        [ Alcotest.test_case "prometheus + json" `Quick test_export ] );
    ]
