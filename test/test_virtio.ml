(* Tests for DMA views, split virtqueues and feature negotiation. *)

module Types = Lastcpu_proto.Types
module Layout = Lastcpu_mem.Layout
module Physmem = Lastcpu_mem.Physmem
module Iommu = Lastcpu_iommu.Iommu
module Dma = Lastcpu_virtio.Dma
module Vq = Lastcpu_virtio.Virtqueue
module Features = Lastcpu_virtio.Features

let page = Layout.page_size

(* A little rig: one memory, two IOMMUs (driver and device), a shared
   mapping of [pages] pages at [va] for both. *)
let rig ?(pages = 16) ?(va = 0x4000_0000L) ?(pa = 0x10_0000L) () =
  let mem = Physmem.create () in
  let iommu_a = Iommu.create () in
  let iommu_b = Iommu.create () in
  let bytes = Int64.mul (Int64.of_int pages) page in
  (match Iommu.map iommu_a ~pasid:1 ~va ~pa ~bytes ~perm:Types.perm_rw with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Iommu.map iommu_b ~pasid:1 ~va ~pa ~bytes ~perm:Types.perm_rw with
  | Ok () -> ()
  | Error e -> failwith e);
  let dma_a = Dma.create ~iommu:iommu_a ~pasid:1 ~mem in
  let dma_b = Dma.create ~iommu:iommu_b ~pasid:1 ~mem in
  (dma_a, dma_b, va)

(* --- Dma ------------------------------------------------------------------ *)

let test_dma_shared_visibility () =
  let dma_a, dma_b, va = rig () in
  Dma.write_u64 dma_a va 0xCAFEBABEL;
  Alcotest.(check int64) "b sees a's write" 0xCAFEBABEL (Dma.read_u64 dma_b va);
  Dma.write_bytes dma_b (Int64.add va 100L) "hello from b";
  Alcotest.(check string) "a sees b's write" "hello from b"
    (Dma.read_bytes dma_a (Int64.add va 100L) 12)

let test_dma_fault_unmapped () =
  let dma_a, _, _ = rig () in
  match Dma.read_u8 dma_a 0x9999_0000L with
  | _ -> Alcotest.fail "expected fault"
  | exception Dma.Dma_fault f ->
    Alcotest.(check bool) "not mapped" true (f.Iommu.reason = Iommu.Not_mapped)

let test_dma_cross_page () =
  let dma_a, dma_b, va = rig () in
  let addr = Int64.add va (Int64.sub page 3L) in
  let data = String.init 10 (fun i -> Char.chr (65 + i)) in
  Dma.write_bytes dma_a addr data;
  Alcotest.(check string) "straddles pages" data (Dma.read_bytes dma_b addr 10)

let test_dma_u16_u32 () =
  let dma_a, _, va = rig () in
  Dma.write_u16 dma_a va 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Dma.read_u16 dma_a va);
  Dma.write_u32 dma_a (Int64.add va 8L) 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Dma.read_u32 dma_a (Int64.add va 8L))

(* --- DMI grants and invalidation ----------------------------------------- *)

(* map_single: single-page ranges yield a direct view backed by the same
   DRAM the copy path reads. *)
let test_dmi_map_single_view () =
  let dma_a, dma_b, va = rig () in
  Dma.write_bytes dma_a va "direct-map me";
  (match Dma.map_single dma_b ~va ~len:13 ~perm:Iommu.Read with
  | None -> Alcotest.fail "single-page map_single failed"
  | Some v ->
    Alcotest.(check string) "view sees DRAM" "direct-map me"
      (Lastcpu_proto.Slice.to_string v ~pos:0 ~len:13));
  (* Multi-page ranges must decline WITHOUT spending translations: the
     caller's copy-path fallback is then the only translation pass. *)
  let t_before = Dma.accesses dma_b in
  (match
     Dma.map_single dma_b ~va:(Int64.sub (Int64.add va page) 8L) ~len:64
       ~perm:Iommu.Read
   with
  | Some _ -> Alcotest.fail "cross-page map_single should refuse"
  | None -> ());
  Alcotest.(check int) "no translations spent on refusal" t_before
    (Dma.accesses dma_b)

(* Repeated grants hit the host-side cache; unmap (the IOMMU invalidation
   edge every revocation path funnels through) drops them. *)
let test_dmi_grant_cache_and_unmap () =
  let mem = Physmem.create () in
  let iommu = Iommu.create () in
  (match
     Iommu.map iommu ~pasid:7 ~va:0x5000_0000L ~pa:0x40_0000L
       ~bytes:(Int64.mul 4L page) ~perm:Types.perm_rw
   with
  | Ok () -> ()
  | Error e -> failwith e);
  let dma = Dma.create ~iommu ~pasid:7 ~mem in
  let va = 0x5000_0000L in
  (match Dma.map_single dma ~va ~len:256 ~perm:Iommu.Read with
  | None -> Alcotest.fail "grant failed"
  | Some _ -> ());
  let hits0 = Dma.dmi_hits dma in
  (match Dma.map_single dma ~va ~len:256 ~perm:Iommu.Read with
  | None -> Alcotest.fail "re-grant failed"
  | Some _ -> ());
  Alcotest.(check int) "second map is a cache hit" (hits0 + 1)
    (Dma.dmi_hits dma);
  let inv0 = Dma.dmi_invalidations dma in
  ignore (Iommu.unmap iommu ~pasid:7 ~va ~bytes:page);
  Alcotest.(check bool) "unmap dropped cached grants" true
    (Dma.dmi_invalidations dma > inv0);
  (match Dma.map_single dma ~va ~len:256 ~perm:Iommu.Read with
  | exception Dma.Dma_fault f ->
    Alcotest.(check bool) "probe faults like the copy path would" true
      (f.Iommu.reason = Iommu.Not_mapped)
  | Some _ -> Alcotest.fail "grant survived unmap"
  | None -> Alcotest.fail "expected a fault, not a decline")

(* PASID teardown (application exit, epoch revocation, quarantine — all
   end in [clear_pasid]) must drop that PASID's grants and only that
   PASID's. *)
let test_dmi_pasid_teardown () =
  let mem = Physmem.create () in
  let iommu = Iommu.create () in
  let mk pasid pa =
    (match
       Iommu.map iommu ~pasid ~va:0x5000_0000L ~pa ~bytes:page
         ~perm:Types.perm_rw
     with
    | Ok () -> ()
    | Error e -> failwith e);
    Dma.create ~iommu ~pasid ~mem
  in
  let dma7 = mk 7 0x40_0000L in
  let dma8 = mk 8 0x80_0000L in
  let grant dma =
    match Dma.map_single dma ~va:0x5000_0000L ~len:64 ~perm:Iommu.Read with
    | Some _ -> ()
    | None -> Alcotest.fail "grant failed"
  in
  grant dma7;
  grant dma8;
  let inv8 = Dma.dmi_invalidations dma8 in
  Iommu.clear_pasid iommu ~pasid:7;
  Alcotest.(check bool) "pasid 7 grants dropped" true
    (Dma.dmi_invalidations dma7 > 0);
  Alcotest.(check int) "pasid 8 grants untouched" inv8
    (Dma.dmi_invalidations dma8);
  let hits8 = Dma.dmi_hits dma8 in
  grant dma8;
  Alcotest.(check int) "pasid 8 cache still warm" (hits8 + 1)
    (Dma.dmi_hits dma8)

(* --- Virtqueue --------------------------------------------------------------- *)

let test_vq_layout_bytes () =
  let b16 = Vq.layout_bytes ~size:16 in
  (* desc 256 + avail 36 (->256+36=292, pad to 292) + used 132 *)
  Alcotest.(check bool) "positive" true (b16 > 0);
  Alcotest.(check bool) "grows with size" true (Vq.layout_bytes ~size:64 > b16);
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Virtqueue: size must be a power of two in [1, 32768]")
    (fun () -> ignore (Vq.layout_bytes ~size:3))

let test_vq_single_chain () =
  let dma_a, dma_b, va = rig () in
  let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size:8 in
  let device = Vq.Device.create ~dma:dma_b ~base:va ~size:8 in
  let buf_va = Int64.add va 8192L in
  Dma.write_bytes dma_a buf_va "request!";
  let head =
    match
      Vq.Driver.add driver
        [
          { Vq.va = buf_va; len = 8; writable = false };
          { Vq.va = Int64.add buf_va 64L; len = 32; writable = true };
        ]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "pending" 1 (Vq.Device.pending device);
  (match Vq.Device.pop device with
  | None -> Alcotest.fail "expected chain"
  | Some { Vq.Device.head = h; buffers } ->
    Alcotest.(check int) "head matches" head h;
    Alcotest.(check int) "two buffers" 2 (List.length buffers);
    (match buffers with
    | [ b1; b2 ] ->
      Alcotest.(check bool) "first read-only" false b1.Vq.writable;
      Alcotest.(check bool) "second writable" true b2.Vq.writable;
      Alcotest.(check string) "device reads request" "request!"
        (Dma.read_bytes dma_b b1.Vq.va b1.Vq.len);
      Dma.write_bytes dma_b b2.Vq.va "response"
    | _ -> Alcotest.fail "bad chain");
    Vq.Device.push_used device ~head:h ~written:8);
  match Vq.Driver.poll_used driver with
  | Some (h, written) ->
    Alcotest.(check int) "completion head" head h;
    Alcotest.(check int) "written" 8 written;
    Alcotest.(check string) "driver reads response" "response"
      (Dma.read_bytes dma_a (Int64.add buf_va 64L) 8)
  | None -> Alcotest.fail "expected completion"

let test_vq_descriptor_exhaustion_and_recycle () =
  let dma_a, dma_b, va = rig () in
  let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size:4 in
  let device = Vq.Device.create ~dma:dma_b ~base:va ~size:4 in
  let buf i = { Vq.va = Int64.add va (Int64.of_int (8192 + (i * 64))); len = 8; writable = false } in
  let heads =
    List.filter_map
      (fun i -> Result.to_option (Vq.Driver.add driver [ buf i ]))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "four posted" 4 (List.length heads);
  (match Vq.Driver.add driver [ buf 9 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "exhaustion not detected");
  (* Device completes everything. *)
  let rec drain () =
    match Vq.Device.pop device with
    | Some { Vq.Device.head; _ } ->
      Vq.Device.push_used device ~head ~written:0;
      drain ()
    | None -> ()
  in
  drain ();
  let rec reap n = match Vq.Driver.poll_used driver with Some _ -> reap (n + 1) | None -> n in
  Alcotest.(check int) "four completions" 4 (reap 0);
  Alcotest.(check int) "all free again" 4 (Vq.Driver.num_free driver);
  (* And we can post again after recycling. *)
  match Vq.Driver.add driver [ buf 5 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("recycle failed: " ^ e)

let test_vq_ordering_rule () =
  let dma_a, _, va = rig () in
  let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size:8 in
  match
    Vq.Driver.add driver
      [
        { Vq.va = Int64.add va 8192L; len = 8; writable = true };
        { Vq.va = Int64.add va 8300L; len = 8; writable = false };
      ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "readable-after-writable accepted"

let test_vq_many_roundtrips_wraparound () =
  let dma_a, dma_b, va = rig () in
  let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size:4 in
  let device = Vq.Device.create ~dma:dma_b ~base:va ~size:4 in
  let buf = { Vq.va = Int64.add va 8192L; len = 4; writable = false } in
  (* Many more round trips than the queue size: exercises 16-bit index
     wrap behaviour. *)
  for i = 1 to 300 do
    (match Vq.Driver.add driver [ buf ] with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "add %d: %s" i e));
    (match Vq.Device.pop device with
    | Some { Vq.Device.head; _ } -> Vq.Device.push_used device ~head ~written:i
    | None -> Alcotest.fail (Printf.sprintf "pop %d: empty" i));
    match Vq.Driver.poll_used driver with
    | Some (_, written) -> Alcotest.(check int) "written echoes i" i written
    | None -> Alcotest.fail (Printf.sprintf "poll %d: empty" i)
  done

let test_vq_indirect_descriptors () =
  let dma_a, dma_b, va = rig () in
  let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size:4 in
  let device = Vq.Device.create ~dma:dma_b ~base:va ~size:4 in
  (* A 6-segment chain through a 4-deep queue: only possible indirectly. *)
  let seg i writable =
    { Vq.va = Int64.add va (Int64.of_int (16384 + (i * 256))); len = 32; writable }
  in
  let chain = [ seg 0 false; seg 1 false; seg 2 false; seg 3 true; seg 4 true; seg 5 true ] in
  let table_va = Int64.add va 32768L in
  Dma.write_bytes dma_a (seg 0 false).Vq.va "indirect!";
  let head =
    match Vq.Driver.add_indirect driver ~table_va chain with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  (* Only one ring descriptor consumed. *)
  Alcotest.(check int) "one slot used" 3 (Vq.Driver.num_free driver);
  (match Vq.Device.pop device with
  | None -> Alcotest.fail "expected chain"
  | Some { Vq.Device.head = h; buffers } ->
    Alcotest.(check int) "head" head h;
    Alcotest.(check int) "six segments" 6 (List.length buffers);
    Alcotest.(check (list bool)) "writability preserved"
      [ false; false; false; true; true; true ]
      (List.map (fun (b : Vq.buffer) -> b.Vq.writable) buffers);
    (match buffers with
    | first :: _ ->
      Alcotest.(check string) "device reads through indirect" "indirect!"
        (Dma.read_bytes dma_b first.Vq.va 9)
    | [] -> Alcotest.fail "empty");
    Vq.Device.push_used device ~head:h ~written:0);
  (match Vq.Driver.poll_used driver with
  | Some (h, _) -> Alcotest.(check int) "completion" head h
  | None -> Alcotest.fail "no completion");
  Alcotest.(check int) "slot recycled" 4 (Vq.Driver.num_free driver)

let test_vq_empty_chain_rejected () =
  let dma_a, _, va = rig () in
  let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size:8 in
  match Vq.Driver.add driver [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty chain accepted"

(* Property: the queue behaves like a FIFO against a reference model under
   random interleavings of add / device-drain / driver-reap. *)
let vq_model_prop =
  QCheck.Test.make ~name:"virtqueue matches FIFO model" ~count:100
    QCheck.(list (int_bound 2))
    (fun script ->
      let dma_a, dma_b, va = rig () in
      let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size:8 in
      let device = Vq.Device.create ~dma:dma_b ~base:va ~size:8 in
      let model_posted = Queue.create () in
      let model_done = Queue.create () in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun action ->
          match action with
          | 0 ->
            (* Driver posts a 1-segment chain tagged with a counter. *)
            incr counter;
            let buf =
              { Vq.va = Int64.add va (Int64.of_int (8192 + (64 * (!counter mod 64))));
                len = !counter; writable = false }
            in
            (match Vq.Driver.add driver [ buf ] with
            | Ok head -> Queue.push (head, !counter) model_posted
            | Error _ ->
              (* Full: model must also be at capacity. *)
              if Queue.length model_posted + Queue.length model_done < 8 then
                ok := false)
          | 1 -> (
            (* Device consumes one chain; it must be the model's oldest. *)
            match Vq.Device.pop device with
            | None -> if not (Queue.is_empty model_posted) then ok := false
            | Some { Vq.Device.head; buffers } -> (
              match Queue.pop model_posted with
              | exception Queue.Empty -> ok := false
              | mhead, tag ->
                if head <> mhead then ok := false;
                (match buffers with
                | [ b ] -> if b.Vq.len <> tag then ok := false
                | _ -> ok := false);
                Vq.Device.push_used device ~head ~written:tag;
                Queue.push (head, tag) model_done))
          | _ -> (
            (* Driver reaps one completion; must be the oldest completed. *)
            match Vq.Driver.poll_used driver with
            | None -> if not (Queue.is_empty model_done) then ok := false
            | Some (head, written) -> (
              match Queue.pop model_done with
              | exception Queue.Empty -> ok := false
              | mhead, tag -> if head <> mhead || written <> tag then ok := false)))
        script;
      !ok)

(* --- Features ------------------------------------------------------------------ *)

(* Device.drain must behave exactly like a pop/push_used loop: same
   completions, same order, one call. *)
let test_vq_drain_batched () =
  let dma_a, dma_b, va = rig ~pages:32 () in
  let size = 8 in
  let driver = Vq.Driver.create ~dma:dma_a ~base:va ~size in
  let device = Vq.Device.create ~dma:dma_b ~base:va ~size in
  let slot i =
    Int64.add va (Int64.of_int ((8 * 4096) + (i * 4096)))
  in
  for i = 0 to 3 do
    match
      Vq.Driver.add driver
        [
          { Vq.va = slot i; len = 100 + i; writable = false };
          { Vq.va = Int64.add (slot i) 2048L; len = 512; writable = true };
        ]
    with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  let served = ref [] in
  let n =
    Vq.Device.drain device ~f:(fun { Vq.Device.buffers; _ } ->
        match buffers with
        | [ req; _resp ] ->
          served := req.Vq.len :: !served;
          req.Vq.len * 2
        | _ -> Alcotest.fail "unexpected chain shape")
  in
  Alcotest.(check int) "drained all four" 4 n;
  Alcotest.(check (list int)) "service order" [ 100; 101; 102; 103 ]
    (List.rev !served);
  let rec collect acc =
    match Vq.Driver.poll_used driver with
    | None -> List.rev acc
    | Some (_, written) -> collect (written :: acc)
  in
  Alcotest.(check (list int)) "completion order and written counts"
    [ 200; 202; 204; 206 ] (collect []);
  Alcotest.(check int) "ring fully recycled" size (Vq.Driver.num_free driver)

let test_features_negotiate () =
  let offered = Features.mask [ Features.version_1; Features.indirect_desc ] in
  let wanted = Features.mask [ Features.version_1 ] in
  let required = Features.mask [ Features.version_1 ] in
  match Features.negotiate ~offered ~wanted ~required with
  | Ok n ->
    Alcotest.(check bool) "has v1" true (Features.has n Features.version_1);
    Alcotest.(check bool) "no indirect" false (Features.has n Features.indirect_desc)
  | Error e -> Alcotest.fail e

let test_features_reject_unoffered () =
  let offered = Features.mask [ Features.version_1 ] in
  let wanted = Features.mask [ Features.version_1; Features.event_idx ] in
  match Features.negotiate ~offered ~wanted ~required:0L with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unoffered feature accepted"

let test_features_reject_missing_required () =
  let offered = Features.mask [ Features.version_1; Features.event_idx ] in
  let wanted = Features.mask [ Features.event_idx ] in
  let required = Features.mask [ Features.version_1 ] in
  match Features.negotiate ~offered ~wanted ~required with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing required accepted"

let () =
  Alcotest.run "virtio"
    [
      ( "dma",
        [
          Alcotest.test_case "shared visibility" `Quick test_dma_shared_visibility;
          Alcotest.test_case "fault on unmapped" `Quick test_dma_fault_unmapped;
          Alcotest.test_case "cross page" `Quick test_dma_cross_page;
          Alcotest.test_case "u16/u32" `Quick test_dma_u16_u32;
        ] );
      ( "virtqueue",
        [
          Alcotest.test_case "layout bytes" `Quick test_vq_layout_bytes;
          Alcotest.test_case "single chain roundtrip" `Quick test_vq_single_chain;
          Alcotest.test_case "exhaustion and recycle" `Quick
            test_vq_descriptor_exhaustion_and_recycle;
          Alcotest.test_case "ordering rule" `Quick test_vq_ordering_rule;
          Alcotest.test_case "index wraparound" `Quick test_vq_many_roundtrips_wraparound;
          Alcotest.test_case "indirect descriptors" `Quick test_vq_indirect_descriptors;
          Alcotest.test_case "empty chain rejected" `Quick test_vq_empty_chain_rejected;
          QCheck_alcotest.to_alcotest vq_model_prop;
        ] );
      ( "dmi",
        [
          Alcotest.test_case "map_single view" `Quick test_dmi_map_single_view;
          Alcotest.test_case "grant cache + unmap" `Quick
            test_dmi_grant_cache_and_unmap;
          Alcotest.test_case "pasid teardown" `Quick test_dmi_pasid_teardown;
        ] );
      ( "drain",
        [
          Alcotest.test_case "batched drain equals pop/push loop" `Quick
            test_vq_drain_batched;
        ] );
      ( "features",
        [
          Alcotest.test_case "negotiate" `Quick test_features_negotiate;
          Alcotest.test_case "reject unoffered" `Quick test_features_reject_unoffered;
          Alcotest.test_case "reject missing required" `Quick
            test_features_reject_missing_required;
        ] );
    ]
