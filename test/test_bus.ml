(* Tests for the system management bus: liveness, routing, privileged
   operations and token checks — exercised with raw handlers, below the
   device framework. *)

module Types = Lastcpu_proto.Types
module Message = Lastcpu_proto.Message
module Token = Lastcpu_proto.Token
module Engine = Lastcpu_sim.Engine
module Iommu = Lastcpu_iommu.Iommu
module Sysbus = Lastcpu_bus.Sysbus

type raw_dev = {
  id : Types.device_id;
  iommu : Iommu.t;
  inbox : Message.t list ref;
}

let attach_raw bus name =
  let iommu = Iommu.create () in
  let inbox = ref [] in
  let id =
    Sysbus.attach bus ~name ~iommu ~handler:(fun m -> inbox := m :: !inbox)
  in
  { id; iommu; inbox }

let announce bus dev =
  Sysbus.send bus
    (Message.make ~src:dev.id ~dst:Types.Bus ~corr:0
       (Message.Device_alive { services = [] }))

let rig () =
  let engine = Engine.create () in
  let bus = Sysbus.create engine in
  let a = attach_raw bus "a" in
  let b = attach_raw bus "b" in
  announce bus a;
  announce bus b;
  Engine.run engine;
  (engine, bus, a, b)

let payloads dev = List.rev_map (fun (m : Message.t) -> m.Message.payload) !(dev.inbox)

let test_liveness () =
  let engine = Engine.create () in
  let bus = Sysbus.create engine in
  let a = attach_raw bus "a" in
  Alcotest.(check bool) "not live before alive" false (Sysbus.is_live bus a.id);
  announce bus a;
  Engine.run engine;
  Alcotest.(check bool) "live after alive" true (Sysbus.is_live bus a.id);
  Alcotest.(check (list int)) "live list" [ a.id ] (Sysbus.live_devices bus)

let test_unicast_routing () =
  let engine, bus, a, b = rig () in
  Sysbus.send bus
    (Message.make ~src:a.id ~dst:(Types.Device b.id) ~corr:7 Message.Reset_device);
  Engine.run engine;
  match !(b.inbox) with
  | [ m ] ->
    Alcotest.(check int) "src" a.id m.Message.src;
    Alcotest.(check int) "corr" 7 m.Message.corr
  | l -> Alcotest.fail (Printf.sprintf "expected 1 message, got %d" (List.length l))

let test_broadcast_excludes_sender () =
  let engine = Engine.create () in
  let bus = Sysbus.create engine in
  let devs = List.init 4 (fun i -> attach_raw bus (Printf.sprintf "d%d" i)) in
  List.iter (announce bus) devs;
  Engine.run engine;
  let sender = List.hd devs in
  Sysbus.send bus
    (Message.make ~src:sender.id ~dst:Types.Broadcast ~corr:0
       (Message.Discover_request { kind = Types.File_service; query = "" }));
  Engine.run engine;
  Alcotest.(check int) "sender not included" 0 (List.length !(sender.inbox));
  List.iter
    (fun d ->
      if d.id <> sender.id then
        Alcotest.(check int)
          (Printf.sprintf "dev %d got it" d.id)
          1
          (List.length !(d.inbox)))
    devs

let test_undeliverable_bounces_error () =
  let engine = Engine.create () in
  let bus = Sysbus.create engine in
  let a = attach_raw bus "a" in
  let b = attach_raw bus "b" in
  announce bus a;
  (* b never announces -> not live *)
  Engine.run engine;
  Sysbus.send bus
    (Message.make ~src:a.id ~dst:(Types.Device b.id) ~corr:3 Message.Reset_device);
  Engine.run engine;
  (match payloads a with
  | [ Message.Error_msg { code = Types.E_device_failed; _ } ] -> ()
  | _ -> Alcotest.fail "expected device-failed bounce");
  Alcotest.(check int) "undeliverable counted" 1 (Sysbus.counters bus).Sysbus.undeliverable

(* --- privileged operations ----------------------------------------------------- *)

let controller_key = 0xFEEDL

let mk_map_token ~issuer ~subject ~pasid ~pa ~bytes ~perm =
  Token.mint ~key:controller_key ~issuer ~subject ~pasid ~resource:"dram"
    ~base:pa ~length:bytes ~perm ~nonce:1L ()

let test_map_directive_programs_iommu () =
  let engine, bus, mc, dev = rig () in
  Sysbus.register_controller bus mc.id ~resource:"dram" ~key:controller_key;
  let token =
    mk_map_token ~issuer:mc.id ~subject:dev.id ~pasid:5 ~pa:0x10_0000L
      ~bytes:8192L ~perm:Types.perm_rw
  in
  Sysbus.send bus
    (Message.make ~src:mc.id ~dst:Types.Bus ~corr:1
       (Message.Map_directive
          {
            device = dev.id;
            pasid = 5;
            va = 0x4000_0000L;
            pa = 0x10_0000L;
            bytes = 8192L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  Alcotest.(check int) "2 pages mapped" 2 (Iommu.mapped_pages dev.iommu ~pasid:5);
  (match Iommu.translate dev.iommu ~pasid:5 ~va:0x4000_1000L ~access:Iommu.Read with
  | Iommu.Ok_pa pa -> Alcotest.(check int64) "pa" 0x10_1000L pa
  | Iommu.Fault _ -> Alcotest.fail "mapping absent");
  (* Both the issuer and the target got Map_complete. *)
  (match payloads mc with
  | [ Message.Map_complete { ok = true; _ } ] -> ()
  | _ -> Alcotest.fail "issuer missing map-complete");
  match payloads dev with
  | [ Message.Map_complete { ok = true; _ } ] -> ()
  | _ -> Alcotest.fail "target missing map-complete"

let test_map_directive_bad_mac_rejected () =
  let engine, bus, mc, dev = rig () in
  Sysbus.register_controller bus mc.id ~resource:"dram" ~key:controller_key;
  let token =
    mk_map_token ~issuer:mc.id ~subject:dev.id ~pasid:5 ~pa:0x10_0000L
      ~bytes:4096L ~perm:Types.perm_rw
  in
  let forged = { token with Token.length = 1_048_576L } in
  Sysbus.send bus
    (Message.make ~src:mc.id ~dst:Types.Bus ~corr:1
       (Message.Map_directive
          {
            device = dev.id;
            pasid = 5;
            va = 0x4000_0000L;
            pa = 0x10_0000L;
            bytes = 1_048_576L;
            perm = Types.perm_rw;
            auth = forged;
          }));
  Engine.run engine;
  Alcotest.(check int) "nothing mapped" 0 (Iommu.mapped_pages dev.iommu ~pasid:5);
  Alcotest.(check int) "token failure counted" 1
    (Sysbus.counters bus).Sysbus.token_failures;
  match payloads mc with
  | [ Message.Error_msg { code = Types.E_bad_token; _ } ] -> ()
  | _ -> Alcotest.fail "expected bad-token error"

let test_map_directive_unregistered_issuer_rejected () =
  let engine, bus, _mc, dev = rig () in
  (* No register_controller call: even a self-consistent token must fail. *)
  let token =
    mk_map_token ~issuer:dev.id ~subject:dev.id ~pasid:5 ~pa:0x10_0000L
      ~bytes:4096L ~perm:Types.perm_rw
  in
  Sysbus.send bus
    (Message.make ~src:dev.id ~dst:Types.Bus ~corr:1
       (Message.Map_directive
          {
            device = dev.id;
            pasid = 5;
            va = 0x4000_0000L;
            pa = 0x10_0000L;
            bytes = 4096L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  Alcotest.(check int) "nothing mapped" 0 (Iommu.mapped_pages dev.iommu ~pasid:5)

let test_map_directive_range_and_perm_enforced () =
  let engine, bus, mc, dev = rig () in
  Sysbus.register_controller bus mc.id ~resource:"dram" ~key:controller_key;
  (* Token over 4096 bytes r-only; directive asks for 8192 rw. *)
  let token =
    mk_map_token ~issuer:mc.id ~subject:dev.id ~pasid:5 ~pa:0x10_0000L
      ~bytes:4096L ~perm:Types.perm_r
  in
  Sysbus.send bus
    (Message.make ~src:mc.id ~dst:Types.Bus ~corr:1
       (Message.Map_directive
          {
            device = dev.id;
            pasid = 5;
            va = 0x4000_0000L;
            pa = 0x10_0000L;
            bytes = 8192L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  Alcotest.(check int) "range violation blocked" 0
    (Iommu.mapped_pages dev.iommu ~pasid:5)

let test_grant_replicates_owner_mapping () =
  let engine, bus, mc, owner = rig () in
  let grantee = attach_raw bus "grantee" in
  announce bus grantee;
  Engine.run engine;
  Sysbus.register_controller bus mc.id ~resource:"dram" ~key:controller_key;
  (* First map into the owner. *)
  let token =
    mk_map_token ~issuer:mc.id ~subject:owner.id ~pasid:9 ~pa:0x20_0000L
      ~bytes:8192L ~perm:Types.perm_rw
  in
  Sysbus.send bus
    (Message.make ~src:mc.id ~dst:Types.Bus ~corr:1
       (Message.Map_directive
          {
            device = owner.id;
            pasid = 9;
            va = 0x5000_0000L;
            pa = 0x20_0000L;
            bytes = 8192L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  (* Owner wields the token to grant read access to the grantee. *)
  Sysbus.send bus
    (Message.make ~src:owner.id ~dst:Types.Bus ~corr:2
       (Message.Grant_request
          {
            to_device = grantee.id;
            pasid = 9;
            va = 0x5000_0000L;
            bytes = 8192L;
            perm = Types.perm_r;
            auth = token;
          }));
  Engine.run engine;
  Alcotest.(check int) "grantee mapped" 2 (Iommu.mapped_pages grantee.iommu ~pasid:9);
  (match Iommu.translate grantee.iommu ~pasid:9 ~va:0x5000_0000L ~access:Iommu.Read with
  | Iommu.Ok_pa pa -> Alcotest.(check int64) "same pa" 0x20_0000L pa
  | Iommu.Fault _ -> Alcotest.fail "grantee mapping absent");
  (* Write stays forbidden: the grant was read-only. *)
  match Iommu.translate grantee.iommu ~pasid:9 ~va:0x5000_0000L ~access:Iommu.Write with
  | Iommu.Fault { reason = Iommu.Protection; _ } -> ()
  | _ -> Alcotest.fail "read-only grant allowed a write"

let test_grant_by_non_subject_rejected () =
  let engine, bus, mc, owner = rig () in
  let thief = attach_raw bus "thief" in
  announce bus thief;
  Engine.run engine;
  Sysbus.register_controller bus mc.id ~resource:"dram" ~key:controller_key;
  let token =
    mk_map_token ~issuer:mc.id ~subject:owner.id ~pasid:9 ~pa:0x20_0000L
      ~bytes:4096L ~perm:Types.perm_rw
  in
  (* The thief stole the owner's token and tries to map the region into
     itself. The bus must refuse: the sender is not the subject. *)
  Sysbus.send bus
    (Message.make ~src:thief.id ~dst:Types.Bus ~corr:2
       (Message.Grant_request
          {
            to_device = thief.id;
            pasid = 9;
            va = 0x5000_0000L;
            bytes = 4096L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  Alcotest.(check int) "thief got nothing" 0 (Iommu.mapped_pages thief.iommu ~pasid:9)

let test_unmap_revokes_everywhere () =
  let engine, bus, mc, owner = rig () in
  let grantee = attach_raw bus "grantee" in
  announce bus grantee;
  Engine.run engine;
  Sysbus.register_controller bus mc.id ~resource:"dram" ~key:controller_key;
  let token =
    mk_map_token ~issuer:mc.id ~subject:owner.id ~pasid:9 ~pa:0x20_0000L
      ~bytes:4096L ~perm:Types.perm_rw
  in
  Sysbus.send bus
    (Message.make ~src:mc.id ~dst:Types.Bus ~corr:1
       (Message.Map_directive
          {
            device = owner.id;
            pasid = 9;
            va = 0x5000_0000L;
            pa = 0x20_0000L;
            bytes = 4096L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  Sysbus.send bus
    (Message.make ~src:owner.id ~dst:Types.Bus ~corr:2
       (Message.Grant_request
          {
            to_device = grantee.id;
            pasid = 9;
            va = 0x5000_0000L;
            bytes = 4096L;
            perm = Types.perm_r;
            auth = token;
          }));
  Engine.run engine;
  (* Controller revokes. *)
  Sysbus.send bus
    (Message.make ~src:mc.id ~dst:Types.Bus ~corr:3
       (Message.Unmap_directive
          {
            device = owner.id;
            pasid = 9;
            va = 0x5000_0000L;
            bytes = 4096L;
            auth = token;
          }));
  Engine.run engine;
  Alcotest.(check int) "owner unmapped" 0 (Iommu.mapped_pages owner.iommu ~pasid:9);
  Alcotest.(check int) "grantee unmapped too" 0
    (Iommu.mapped_pages grantee.iommu ~pasid:9)

let test_tokens_disabled_skips_checks () =
  let engine = Engine.create () in
  let bus =
    Sysbus.create
      ~config:{ Sysbus.default_config with enable_tokens = false }
      engine
  in
  let a = attach_raw bus "a" in
  announce bus a;
  Engine.run engine;
  (* Garbage token, never-registered issuer: accepted in the ablation. *)
  let token =
    Token.mint ~key:1L ~issuer:a.id ~subject:a.id ~pasid:1 ~resource:"dram"
      ~base:0L ~length:0L ~perm:Types.perm_none ~nonce:0L ()
  in
  Sysbus.send bus
    (Message.make ~src:a.id ~dst:Types.Bus ~corr:1
       (Message.Map_directive
          {
            device = a.id;
            pasid = 1;
            va = 0x1000L;
            pa = 0x2000L;
            bytes = 4096L;
            perm = Types.perm_rw;
            auth = token;
          }));
  Engine.run engine;
  Alcotest.(check int) "mapped without checks" 1 (Iommu.mapped_pages a.iommu ~pasid:1)

(* --- failure ---------------------------------------------------------------------- *)

let test_fail_device_broadcasts () =
  let engine, bus, a, b = rig () in
  Sysbus.fail_device bus b.id;
  Engine.run engine;
  Alcotest.(check bool) "b down" false (Sysbus.is_live bus b.id);
  match payloads a with
  | [ Message.Device_failed { device } ] ->
    Alcotest.(check int) "names b" b.id device
  | _ -> Alcotest.fail "expected Device_failed broadcast"

let test_heartbeat_timeout_detection () =
  let engine = Engine.create () in
  let bus =
    Sysbus.create
      ~config:
        { Sysbus.default_config with heartbeat_timeout_ns = 100_000L }
      engine
  in
  let a = attach_raw bus "a" in
  let b = attach_raw bus "b" in
  announce bus a;
  announce bus b;
  Engine.run ~until:50_000L engine;
  Alcotest.(check bool) "live initially" true (Sysbus.is_live bus b.id);
  (* a heartbeats, b goes silent. *)
  let rec beat t =
    if t < 500_000L then begin
      Engine.schedule_at engine ~time:t (fun () ->
          Sysbus.send bus
            (Message.make ~src:a.id ~dst:Types.Bus ~corr:0 Message.Heartbeat));
      beat (Int64.add t 50_000L)
    end
  in
  beat 60_000L;
  Engine.run ~until:500_000L engine;
  Alcotest.(check bool) "a survives" true (Sysbus.is_live bus a.id);
  Alcotest.(check bool) "b timed out" false (Sysbus.is_live bus b.id)

let test_revive_and_reannounce () =
  let engine, bus, _a, b = rig () in
  Sysbus.fail_device bus b.id;
  Engine.run engine;
  Sysbus.revive_device bus b.id;
  Alcotest.(check bool) "still not live" false (Sysbus.is_live bus b.id);
  announce bus b;
  Engine.run engine;
  Alcotest.(check bool) "live again" true (Sysbus.is_live bus b.id)

let test_notify_fast_path () =
  let engine, bus, a, b = rig () in
  ignore a;
  Sysbus.notify bus ~src:a.id ~dst:b.id ~queue:42;
  Engine.run engine;
  (match payloads b with
  | [ Message.Doorbell { queue } ] -> Alcotest.(check int) "queue" 42 queue
  | _ -> Alcotest.fail "expected doorbell");
  (* Doorbells do not occupy the bus station. *)
  Alcotest.(check int) "station untouched by notify" 2
    (Lastcpu_sim.Station.jobs_completed (Sysbus.station bus))

(* Fuzz: arbitrary well-formed messages from arbitrary sources never crash
   the bus, and mapping counters only grow via properly authorized
   directives (here: none, since no controller is registered). *)
let bus_fuzz_prop =
  QCheck.Test.make ~name:"random message storms never crash or map" ~count:50
    QCheck.(list (pair (int_bound 3) (pair (int_bound 4) small_string)))
    (fun script ->
      let engine = Engine.create () in
      let bus = Sysbus.create engine in
      let devs = List.init 4 (fun i -> attach_raw bus (Printf.sprintf "d%d" i)) in
      List.iter (announce bus) devs;
      Engine.run engine;
      List.iter
        (fun (src, (kind, s)) ->
          let src = (List.nth devs src).id in
          let token =
            Token.mint ~key:(Int64.of_int (String.length s)) ~issuer:src
              ~subject:src ~pasid:1 ~resource:s ~base:0L ~length:4096L
              ~perm:Types.perm_rw ~nonce:0L ()
          in
          let payload =
            match kind with
            | 0 -> Message.App_message { tag = s; body = s }
            | 1 ->
              Message.Map_directive
                {
                  device = src;
                  pasid = 1;
                  va = 0x1000L;
                  pa = 0x2000L;
                  bytes = 4096L;
                  perm = Types.perm_rw;
                  auth = token;
                }
            | 2 -> Message.Doorbell { queue = String.length s }
            | 3 -> Message.Fault_notify { pasid = 0; va = 0L; detail = s }
            | _ -> Message.Heartbeat
          in
          let dst =
            match kind with
            | 1 -> Types.Bus
            | 2 -> Types.Broadcast
            | _ -> Types.Device ((src + 1) mod 4)
          in
          Sysbus.send bus (Message.make ~src ~dst ~corr:0 payload))
        script;
      Engine.run engine;
      (* No unauthorized mapping ever lands. *)
      List.for_all
        (fun d -> Lastcpu_iommu.Iommu.mapped_pages d.iommu ~pasid:1 = 0)
        devs)

let () =
  Alcotest.run "bus"
    [
      ( "transport",
        [
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "unicast" `Quick test_unicast_routing;
          Alcotest.test_case "broadcast" `Quick test_broadcast_excludes_sender;
          Alcotest.test_case "undeliverable bounce" `Quick test_undeliverable_bounces_error;
          Alcotest.test_case "notify fast path" `Quick test_notify_fast_path;
        ] );
      ( "privileged",
        [
          Alcotest.test_case "map directive" `Quick test_map_directive_programs_iommu;
          Alcotest.test_case "bad mac rejected" `Quick test_map_directive_bad_mac_rejected;
          Alcotest.test_case "unregistered issuer" `Quick
            test_map_directive_unregistered_issuer_rejected;
          Alcotest.test_case "range/perm enforced" `Quick
            test_map_directive_range_and_perm_enforced;
          Alcotest.test_case "grant replicates" `Quick test_grant_replicates_owner_mapping;
          Alcotest.test_case "stolen token rejected" `Quick
            test_grant_by_non_subject_rejected;
          Alcotest.test_case "unmap revokes everywhere" `Quick
            test_unmap_revokes_everywhere;
          Alcotest.test_case "tokens-off ablation" `Quick test_tokens_disabled_skips_checks;
        ] );
      ( "failure",
        [
          Alcotest.test_case "fail broadcasts" `Quick test_fail_device_broadcasts;
          Alcotest.test_case "heartbeat timeout" `Quick test_heartbeat_timeout_detection;
          Alcotest.test_case "revive + reannounce" `Quick test_revive_and_reannounce;
        ] );
      ("fuzz", [ QCheck_alcotest.to_alcotest bus_fuzz_prop ]);
    ]
