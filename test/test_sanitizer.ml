(* Same-tick ordering sanitizer: a deliberately racy pair of same-timestamp
   events (non-commutative updates to probed state) must be flagged as a
   divergence under a perturbed tie-break, a commutative pair must not,
   single-event ticks must not be journalled, and the real T1 experiment
   must sanitize clean under both perturbations. *)

module Engine = Lastcpu_sim.Engine
module Sanitizer = Lastcpu_sim.Sanitizer
module Experiments = Lastcpu_core.Experiments

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Run two same-timestamp events over a probed accumulator and return the
   sanitizer journal. [f] and [g] are applied to the accumulator in the
   order the tie-break dictates. *)
let journal_of ~tie f g =
  let engine = Engine.create ~tie ~sanitize:true () in
  let x = ref 1 in
  Engine.register_probe engine (fun () -> Int64.of_int !x);
  Engine.schedule_at ~label:(fun () -> "first") engine ~time:100L (fun () -> x := f !x);
  Engine.schedule_at ~label:(fun () -> "second") engine ~time:100L (fun () -> x := g !x);
  Engine.run engine;
  Engine.sanitizer_journal engine

(* --- the racy scenario is detected ------------------------------------------- *)

let test_racy_pair_flagged () =
  (* double-then-add vs add-then-double observably differ: 1*2+3=5 but
     (1+3)*2=8. FIFO is the reference order; LIFO swaps the pair. *)
  let reference = journal_of ~tie:Engine.Fifo (fun v -> v * 2) (fun v -> v + 3) in
  let perturbed = journal_of ~tie:Engine.Lifo (fun v -> v * 2) (fun v -> v + 3) in
  check "reference journalled one multi-event tick" 1 (List.length reference);
  check "perturbed journalled one multi-event tick" 1 (List.length perturbed);
  match Sanitizer.compare_journals ~reference ~perturbed with
  | None -> Alcotest.fail "ordering race not detected"
  | Some d ->
    check "at the first journal entry" 0 d.Sanitizer.index;
    (match (d.Sanitizer.reference, d.Sanitizer.perturbed) with
    | Some r, Some p ->
      checkb "hashes differ" true (r.Sanitizer.state_hash <> p.Sanitizer.state_hash);
      Alcotest.(check (list string))
        "colliding labels reported" [ "first"; "second" ] r.Sanitizer.labels
    | _ -> Alcotest.fail "both sides of the divergence should be present")

let test_commutative_pair_clean () =
  (* Both orders land on 1+3+5: no observable dependence on tie order. *)
  let reference = journal_of ~tie:Engine.Fifo (fun v -> v + 3) (fun v -> v + 5) in
  let perturbed = journal_of ~tie:Engine.Lifo (fun v -> v + 3) (fun v -> v + 5) in
  checkb "no divergence" true
    (Sanitizer.compare_journals ~reference ~perturbed = None)

let test_salted_perturbation_detects () =
  (* The seed-salted tie-break must also be able to expose the race for
     some salt; salt 1 swaps this pair (empirically stable: the salted
     key is a pure function of salt and insertion sequence). *)
  let reference = journal_of ~tie:Engine.Fifo (fun v -> v * 2) (fun v -> v + 3) in
  let flagged =
    List.exists
      (fun salt ->
        let perturbed =
          journal_of ~tie:(Engine.Salted salt) (fun v -> v * 2) (fun v -> v + 3)
        in
        Sanitizer.compare_journals ~reference ~perturbed <> None)
      [ 1L; 2L; 3L; 4L ]
  in
  checkb "some salt swaps the pair" true flagged

(* --- journal hygiene --------------------------------------------------------- *)

let test_single_event_ticks_not_journalled () =
  let engine = Engine.create ~sanitize:true () in
  let x = ref 0 in
  Engine.register_probe engine (fun () -> Int64.of_int !x);
  Engine.schedule_at engine ~time:10L (fun () -> incr x);
  Engine.schedule_at engine ~time:20L (fun () -> incr x);
  Engine.run engine;
  check "no multi-event ticks" 0 (List.length (Engine.sanitizer_journal engine))

let test_not_sanitizing_by_default () =
  let engine = Engine.create () in
  checkb "off by default" false (Engine.sanitizing engine);
  check "journal empty" 0 (List.length (Engine.sanitizer_journal engine))

(* --- hash utilities ----------------------------------------------------------- *)

let test_hash_utilities () =
  checkb "mix64 separates neighbours" true
    (Sanitizer.mix64 1L <> Sanitizer.mix64 2L);
  checkb "hash_string keyed by seed" true
    (Sanitizer.hash_string 1L "abc" <> Sanitizer.hash_string 2L "abc");
  checkb "combine is order-sensitive" true
    (Sanitizer.combine (Sanitizer.combine 0L 1L) 2L
    <> Sanitizer.combine (Sanitizer.combine 0L 2L) 1L)

(* --- the real experiments sanitize clean -------------------------------------- *)

let test_t1_sanitizes_clean () =
  let reports = Experiments.sanitize ~exp:"t1" () in
  check "lifo and salted" 2 (List.length reports);
  List.iter
    (fun (r : Experiments.sanitize_report) ->
      checkb
        (Printf.sprintf "t1 vs %s clean" r.Experiments.san_perturbation)
        true
        (r.Experiments.san_divergence = None);
      checkb "exercised multi-event ticks" true
        (r.Experiments.san_multi_event_ticks > 0))
    reports

let test_unknown_experiment_rejected () =
  Alcotest.check_raises "unknown id"
    (Invalid_argument "sanitize: unknown experiment t99")
    (fun () -> ignore (Experiments.sanitize ~exp:"t99" ()))

let () =
  Alcotest.run "sanitizer"
    [
      ( "races",
        [
          Alcotest.test_case "racy pair flagged" `Quick test_racy_pair_flagged;
          Alcotest.test_case "commutative pair clean" `Quick
            test_commutative_pair_clean;
          Alcotest.test_case "salted perturbation" `Quick
            test_salted_perturbation_detects;
        ] );
      ( "journal",
        [
          Alcotest.test_case "single-event ticks skipped" `Quick
            test_single_event_ticks_not_journalled;
          Alcotest.test_case "off by default" `Quick test_not_sanitizing_by_default;
        ] );
      ( "hashing", [ Alcotest.test_case "utilities" `Quick test_hash_utilities ] );
      ( "experiments",
        [
          Alcotest.test_case "t1 clean" `Quick test_t1_sanitizes_clean;
          Alcotest.test_case "unknown id" `Quick test_unknown_experiment_rejected;
        ] );
    ]
